//! The paper's §III theorem: energy nonproportionality of two homogeneous
//! cores under the simple EP model.
//!
//! Setup: two cores C₁, C₂ follow the *simple EP model* — dynamic power
//! `P = a·U`, execution time `t = b/U` — and execute one load-balanced
//! application configuration each (threads don't interact). Both cores
//! stay powered until the slower one finishes, so each core's dynamic
//! energy is its power times the *maximum* of the two times.
//!
//! Three configurations are compared (Eqs. 1–3):
//!
//! 1. both cores at utilization `U` → `E₁ = 2ab`;
//! 2. C₁ raised to `U + ΔU` → `E₂ = ab·(U+ΔU)/U + ab > E₁`
//!    (more energy, *no* performance gain);
//! 3. C₁ raised to `U + ΔU`, C₂ lowered to `U − ΔU` (same average
//!    utilization) → `E₃ = ab·(1 + (U+ΔU)/(U−ΔU)) > E₂ > E₁`
//!    (more energy *and* less performance).
//!
//! Hence any divergence of per-core utilizations strictly increases
//! dynamic energy — weak EP cannot survive utilization imbalance, even on
//! hardware that is perfectly energy-proportional core by core.

use enprop_units::{Joules, Seconds, Utilization, Watts};
use serde::{Deserialize, Serialize};

/// A core obeying the simple EP model `P = a·U`, `t = b/U`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimpleEpCore {
    /// Power coefficient `a` (watts at full utilization).
    pub a: f64,
    /// Time coefficient `b` (seconds at full utilization).
    pub b: f64,
}

impl SimpleEpCore {
    /// Creates a core model; both constants must be positive.
    pub fn new(a: f64, b: f64) -> Self {
        assert!(a > 0.0 && b > 0.0, "model constants must be positive");
        Self { a, b }
    }

    /// Dynamic power at utilization `u`.
    pub fn power(&self, u: Utilization) -> Watts {
        Watts(self.a * u.fraction())
    }

    /// Execution time at utilization `u` (infinite at zero utilization).
    pub fn time(&self, u: Utilization) -> Seconds {
        Seconds(self.b / u.fraction())
    }
}

/// The §III analysis for a pair of identical cores.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TwoCoreAnalysis {
    /// The shared core model.
    pub core: SimpleEpCore,
}

impl TwoCoreAnalysis {
    /// Creates the analysis.
    pub fn new(core: SimpleEpCore) -> Self {
        Self { core }
    }

    /// Total dynamic energy of a configuration running C₁ at `u1` and C₂
    /// at `u2`: each core draws its power for the *slower* core's time.
    pub fn energy(&self, u1: Utilization, u2: Utilization) -> Joules {
        assert!(
            u1.fraction() > 0.0 && u2.fraction() > 0.0,
            "both cores must be utilized"
        );
        let t = self.core.time(u1).max(self.core.time(u2));
        self.core.power(u1) * t + self.core.power(u2) * t
    }

    /// Eq. (1): the balanced configuration, `E₁ = 2ab`.
    pub fn e1(&self, _u: Utilization) -> Joules {
        Joules(2.0 * self.core.a * self.core.b)
    }

    /// Eq. (2): C₁ raised by ΔU, `E₂ = ab·(U+ΔU)/U + ab`.
    pub fn e2(&self, u: Utilization, delta: f64) -> Joules {
        let (a, b) = (self.core.a, self.core.b);
        let uu = u.fraction();
        assert!(delta > 0.0 && uu + delta <= 1.0, "need 0 < ΔU ≤ 1 − U");
        Joules(a * b * (uu + delta) / uu + a * b)
    }

    /// Eq. (3): C₁ raised and C₂ lowered by ΔU (same average utilization),
    /// `E₃ = ab·(1 + (U+ΔU)/(U−ΔU))`.
    pub fn e3(&self, u: Utilization, delta: f64) -> Joules {
        let (a, b) = (self.core.a, self.core.b);
        let uu = u.fraction();
        assert!(delta > 0.0 && uu + delta <= 1.0 && uu - delta > 0.0, "need 0 < ΔU < U");
        Joules(a * b * (1.0 + (uu + delta) / (uu - delta)))
    }

    /// The theorem: for any admissible `(U, ΔU)`, `E₃ > E₂ > E₁`.
    /// Returns the triple for inspection.
    pub fn theorem_triple(&self, u: Utilization, delta: f64) -> (Joules, Joules, Joules) {
        (self.e1(u), self.e2(u, delta), self.e3(u, delta))
    }
}

/// Generalization to `n` homogeneous cores: total dynamic energy of a
/// configuration with per-core utilizations `us`, every core powered until
/// the slowest finishes. Balanced utilization minimizes this for a fixed
/// utilization *sum* (hence fixed average).
pub fn n_core_energy(core: SimpleEpCore, us: &[Utilization]) -> Joules {
    assert!(!us.is_empty(), "need at least one core");
    assert!(us.iter().all(|u| u.fraction() > 0.0), "all cores must be utilized");
    let slowest = us
        .iter()
        .map(|&u| core.time(u))
        .fold(Seconds::ZERO, |acc, t| acc.max(t));
    us.iter().map(|&u| core.power(u) * slowest).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analysis() -> TwoCoreAnalysis {
        TwoCoreAnalysis::new(SimpleEpCore::new(3.0, 2.0))
    }

    #[test]
    fn eq1_balanced_energy_is_2ab() {
        let an = analysis();
        assert_eq!(an.e1(Utilization::new(0.5)), Joules(12.0));
        // Balanced energy is independent of U — the weak-EP ideal.
        assert_eq!(an.e1(Utilization::new(0.25)), an.e1(Utilization::new(0.9)));
        // And it matches the general energy function.
        let u = Utilization::new(0.6);
        assert!((an.energy(u, u) - an.e1(u)).abs().value() < 1e-12);
    }

    #[test]
    fn eq2_matches_general_energy() {
        let an = analysis();
        let u = Utilization::new(0.5);
        let d = 0.2;
        let general = an.energy(Utilization::new(0.7), u);
        assert!((an.e2(u, d) - general).abs().value() < 1e-12);
    }

    #[test]
    fn eq3_matches_general_energy() {
        let an = analysis();
        let u = Utilization::new(0.5);
        let d = 0.2;
        let general = an.energy(Utilization::new(0.7), Utilization::new(0.3));
        assert!((an.e3(u, d) - general).abs().value() < 1e-12);
    }

    #[test]
    fn theorem_e3_gt_e2_gt_e1() {
        let an = analysis();
        for &(u, d) in &[(0.5, 0.1), (0.5, 0.4), (0.3, 0.05), (0.8, 0.15), (0.6, 0.39)] {
            let (e1, e2, e3) = an.theorem_triple(Utilization::new(u), d);
            assert!(e3 > e2, "U={u} ΔU={d}: E3={e3:?} E2={e2:?}");
            assert!(e2 > e1, "U={u} ΔU={d}: E2={e2:?} E1={e1:?}");
        }
    }

    #[test]
    fn imbalance_never_helps_n_cores() {
        let core = SimpleEpCore::new(2.0, 1.0);
        let balanced = vec![Utilization::new(0.5); 6];
        let e_balanced = n_core_energy(core, &balanced);
        // Perturb while preserving the average.
        let perturbed: Vec<Utilization> = [0.3, 0.7, 0.45, 0.55, 0.5, 0.5]
            .iter()
            .map(|&u| Utilization::new(u))
            .collect();
        let e_perturbed = n_core_energy(core, &perturbed);
        assert!(e_perturbed > e_balanced);
    }

    #[test]
    fn raising_one_core_wastes_energy_without_speedup() {
        // Eq. 2's point: the application is no faster (the other core still
        // takes b/U) but energy went up.
        let an = analysis();
        let u = Utilization::new(0.5);
        let t_before = an.core.time(u);
        let t_after = an.core.time(Utilization::new(0.7)).max(an.core.time(u));
        assert_eq!(t_before, t_after);
        assert!(an.e2(u, 0.2) > an.e1(u));
    }

    #[test]
    #[should_panic(expected = "ΔU < U")]
    fn eq3_requires_delta_below_u() {
        analysis().e3(Utilization::new(0.3), 0.3);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn invalid_model_constants_rejected() {
        SimpleEpCore::new(0.0, 1.0);
    }
}
