//! Microbenchmarks and ablations of the analysis machinery: Pareto-front
//! computation at cloud scale, the statistical measurement protocol, and
//! the EP metric.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use enprop_ep::partition::{DiscreteProfile, Partitioner};
use enprop_ep::ep_metric_area;
use enprop_units::{Joules, Seconds};
use enprop_pareto::{front_layers, pareto_front, BiPoint};
use enprop_stats::protocol::{measure_until_ci, MeasureConfig};
use enprop_units::{Utilization, Watts};

/// Deterministic synthetic cloud of `n` points.
fn cloud(n: usize) -> Vec<BiPoint> {
    let mut state = 0xDEADBEEFu64;
    let mut unit = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n).map(|_| BiPoint::new(1.0 + unit() * 10.0, 50.0 + unit() * 200.0)).collect()
}

fn bench_pareto(c: &mut Criterion) {
    let mut g = c.benchmark_group("pareto_front");
    for &n in &[100usize, 1000, 10_000] {
        let pts = cloud(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &pts, |b, pts| {
            b.iter(|| pareto_front(pts))
        });
    }
    g.finish();

    let pts = cloud(1000);
    c.bench_function("pareto_layers/1000", |b| b.iter(|| front_layers(&pts)));
}

fn bench_protocol(c: &mut Criterion) {
    // Ablation: protocol cost vs. measurement noise level.
    let mut g = c.benchmark_group("measure_until_ci");
    for &noise in &[0.001f64, 0.01, 0.03] {
        g.bench_with_input(BenchmarkId::from_parameter(noise), &noise, |b, &noise| {
            b.iter(|| {
                let mut k = 0.0f64;
                measure_until_ci(MeasureConfig::default(), || {
                    k += 1.0;
                    100.0 * (1.0 + noise * (k * 0.7).sin())
                })
            })
        });
    }
    g.finish();
}

fn bench_ep_metric(c: &mut Criterion) {
    let curve: Vec<(Utilization, Watts)> = (0..=100)
        .map(|i| {
            let u = i as f64 / 100.0;
            (Utilization::new(u), Watts(50.0 + 200.0 * u.sqrt()))
        })
        .collect();
    c.bench_function("ep_metric_area/101pts", |b| b.iter(|| ep_metric_area(&curve)));
}

fn bench_partitioner(c: &mut Criterion) {
    // Exact bi-objective partitioning scales with chunks × processors;
    // dominance pruning keeps the DP frontier small.
    let profile = |name: &str, a: f64, b: f64, q: usize| {
        DiscreteProfile::from_fn(name, q, move |k| {
            let kf = k as f64;
            (Seconds(a * kf * (1.0 + 0.1 * (kf * 0.7).sin())), Joules(b * kf * kf * 0.1 + kf))
        })
    };
    let mut g = c.benchmark_group("partitioner");
    g.sample_size(10);
    for &chunks in &[16usize, 48, 96] {
        let p = Partitioner::new(vec![
            profile("cpu", 1.0, 2.0, chunks),
            profile("k40c", 0.6, 3.0, chunks),
            profile("p100", 0.3, 1.0, chunks),
        ]);
        g.bench_with_input(BenchmarkId::from_parameter(chunks), &chunks, |b, &chunks| {
            b.iter(|| p.solve(chunks))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pareto, bench_protocol, bench_ep_metric, bench_partitioner);
criterion_main!(benches);
