//! End-to-end pipeline tests: simulator → meter → statistical protocol →
//! Pareto/EP analysis, across crates.

use enprop::apps::{CpuDgemmApp, GpuMatMulApp, SweepExecutor};
use enprop::cpusim::BlasFlavor;
use enprop::ep::{StrongEpTest, WeakEpTest};
use enprop::gpusim::GpuArch;
use enprop::pareto::TradeoffAnalysis;
use enprop::units::{Joules, Work};

/// The full noisy methodology on the P100 reproduces the noise-free
/// geometry: a multi-point global front with large savings.
#[test]
fn measured_p100_front_matches_exact_geometry() {
    let app = GpuMatMulApp::new(GpuArch::p100_pcie(), 8);
    let n = 10240;

    let exact = app.sweep_exact(n);
    let exact_front = TradeoffAnalysis::of(&exact.iter().map(|p| p.bi_point()).collect::<Vec<_>>());

    let measured = app.sweep_measured(n, &SweepExecutor::new(99));
    let measured_front =
        TradeoffAnalysis::of(&measured.iter().map(|p| p.bi_point()).collect::<Vec<_>>());

    // Front sizes agree within one point (noise can merge near-ties).
    let diff = (exact_front.len() as i64 - measured_front.len() as i64).abs();
    assert!(diff <= 1, "{} vs {}", exact_front.len(), measured_front.len());

    // Headline savings agree within a few points of noise.
    let (se, _) = exact_front.best_pair().expect("exact front has a trade-off");
    let (sm, dm) = measured_front.best_pair().expect("measured front has a trade-off");
    assert!((se - sm).abs() < 0.08, "savings {se} vs {sm}");
    assert!(dm < 0.30, "degradation {dm}");

    // Every measured point converged under the paper's protocol.
    assert!(measured.iter().all(|p| p.converged));
}

/// Weak EP is violated through the full measurement chain on both GPUs.
#[test]
fn measured_weak_ep_violation_on_both_gpus() {
    for arch in GpuArch::catalog() {
        let name = arch.name.clone();
        let app = GpuMatMulApp::new(arch, 4);
        // A modest size keeps the test quick; the violation is size-robust.
        let pts = app.sweep_measured(4096, &SweepExecutor::new(7));
        let energies: Vec<Joules> = pts.iter().map(|p| p.dynamic_energy).collect();
        let verdict = WeakEpTest::default().run(&energies);
        assert!(!verdict.holds, "{name} unexpectedly satisfies weak EP");
        assert!(verdict.rel_spread > 1.0, "{name}: spread {}", verdict.rel_spread);
    }
}

/// The CPU pipeline: measured energies stay close to the simulator's
/// ground truth, and the K40c-style strong-EP test fails on the workload
/// scaling of the best CPU configuration.
#[test]
fn cpu_pipeline_and_strong_ep() {
    let app = CpuDgemmApp::haswell();
    let pts = app.sweep_measured(8192, BlasFlavor::IntelMkl, &SweepExecutor::new(12), 50);
    assert!(!pts.is_empty());
    for p in &pts {
        assert!(p.point.converged, "{:?}", p.point.config);
        assert!(p.point.dynamic_energy.value() > 0.0);
    }

    // Strong EP on the CPU is tested with the Fig. 1 workload — the 2-D
    // FFT, whose cache regimes and size-smoothness sensitivity bend E(W).
    // (The fixed-configuration DGEMM is nearly work-proportional, which is
    // why the paper uses the FFT for the strong-EP study.)
    let fft = enprop::cpusim::fft_model::CpuFft2d::haswell();
    let sweep: Vec<(Work, Joules)> = [256usize, 1000, 1940, 4096, 9973, 16384, 44000]
        .iter()
        .map(|&n| {
            let e = fft.estimate(n);
            (enprop::gpusim::fft_model::fft2d_work(n), e.energy)
        })
        .collect();
    let verdict = StrongEpTest::default().run(&sweep);
    assert!(!verdict.holds, "CPU unexpectedly satisfies strong EP: {verdict:?}");
}

/// Determinism: the entire measured pipeline is reproducible by seed —
/// and independent of thread count.
#[test]
fn pipeline_is_deterministic_under_seed() {
    let app = GpuMatMulApp::new(GpuArch::k40c(), 4);
    let run = |seed| app.sweep_measured(2048, &SweepExecutor::new(seed));
    let a = run(5);
    let b = run(5);
    let c = run(6);
    assert_eq!(a, b);
    assert_ne!(a, c);
    // Explicit thread counts reproduce the same output bitwise.
    assert_eq!(a, app.sweep_measured(2048, &SweepExecutor::serial(5)));
}
