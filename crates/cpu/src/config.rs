//! The CPU application configuration space.
//!
//! Fig. 4's data points "represent different application configurations
//! (type of matrix partitioning, number of thread groups, number of
//! threads per group) solving the same matrix size", for two BLAS-backed
//! applications (Intel MKL and OpenBLAS DGEMM).

use serde::{Deserialize, Serialize};

/// How matrices A and C are partitioned among threadgroups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Partitioning {
    /// Horizontal row bands (the paper's Fig. 3 decomposition).
    RowWise,
    /// Square (2-D) blocks.
    Square,
}

/// How threads are pinned to cores across the two sockets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pinning {
    /// Fill socket 0's cores first, then socket 1 (OS-default affinity).
    Compact,
    /// Alternate sockets thread by thread (NUMA-interleaved), spreading
    /// memory-bandwidth demand across both memory controllers.
    Scatter,
}

/// Which BLAS library backs the DGEMM kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BlasFlavor {
    /// Intel MKL.
    IntelMkl,
    /// OpenBLAS.
    OpenBlas,
}

impl BlasFlavor {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            BlasFlavor::IntelMkl => "Intel MKL",
            BlasFlavor::OpenBlas => "OpenBLAS",
        }
    }
}

/// One application configuration of the threadgroup DGEMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CpuDgemmConfig {
    /// Matrix partitioning scheme.
    pub partitioning: Partitioning,
    /// Thread-to-core pinning policy.
    pub pinning: Pinning,
    /// Number of threadgroups `p`.
    pub groups: usize,
    /// Threads per group `t`.
    pub threads_per_group: usize,
    /// BLAS flavor.
    pub flavor: BlasFlavor,
}

impl CpuDgemmConfig {
    /// Total threads `p × t`.
    pub fn total_threads(&self) -> usize {
        self.groups * self.threads_per_group
    }

    /// Enumerates the configuration sweep for a node with `logical_cores`
    /// logical CPUs: every `(partitioning, p, t)` with `p × t ≤
    /// logical_cores`, one thread per core, for one BLAS flavor.
    pub fn enumerate(logical_cores: usize, flavor: BlasFlavor) -> Vec<CpuDgemmConfig> {
        let mut out = Vec::new();
        for partitioning in [Partitioning::RowWise, Partitioning::Square] {
            for pinning in [Pinning::Compact, Pinning::Scatter] {
                for groups in 1..=logical_cores {
                    for threads in 1..=logical_cores {
                        if groups * threads <= logical_cores {
                            out.push(CpuDgemmConfig {
                                partitioning,
                                pinning,
                                groups,
                                threads_per_group: threads,
                                flavor,
                            });
                        }
                    }
                }
            }
        }
        out
    }

    /// A compact label, e.g. `MKL row/cmp p=4 t=6`.
    pub fn label(&self) -> String {
        let part = match self.partitioning {
            Partitioning::RowWise => "row",
            Partitioning::Square => "sq",
        };
        let pin = match self.pinning {
            Pinning::Compact => "cmp",
            Pinning::Scatter => "sct",
        };
        let lib = match self.flavor {
            BlasFlavor::IntelMkl => "MKL",
            BlasFlavor::OpenBlas => "OpenBLAS",
        };
        format!("{lib} {part}/{pin} p={} t={}", self.groups, self.threads_per_group)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_respects_core_budget() {
        let cfgs = CpuDgemmConfig::enumerate(48, BlasFlavor::IntelMkl);
        assert!(!cfgs.is_empty());
        assert!(cfgs.iter().all(|c| c.total_threads() <= 48));
        // Both partitionings appear.
        assert!(cfgs.iter().any(|c| c.partitioning == Partitioning::RowWise));
        assert!(cfgs.iter().any(|c| c.partitioning == Partitioning::Square));
        // Extremes present: 1×1 and 1×48 / 48×1.
        assert!(cfgs.iter().any(|c| c.groups == 1 && c.threads_per_group == 48));
        assert!(cfgs.iter().any(|c| c.groups == 48 && c.threads_per_group == 1));
    }

    #[test]
    fn enumeration_count_is_sum_of_divisor_bounds() {
        // For each p, t ranges over 1..=floor(48/p) → Σ floor(48/p), ×2
        // partitionings.
        // ×2 partitionings ×2 pinnings.
        let expect: usize = (1..=48).map(|p| 48 / p).sum::<usize>() * 4;
        assert_eq!(CpuDgemmConfig::enumerate(48, BlasFlavor::OpenBlas).len(), expect);
    }

    #[test]
    fn labels_are_distinct_for_distinct_configs() {
        let a = CpuDgemmConfig {
            partitioning: Partitioning::RowWise,
            pinning: Pinning::Compact,
            groups: 4,
            threads_per_group: 6,
            flavor: BlasFlavor::IntelMkl,
        };
        let b = CpuDgemmConfig { groups: 6, threads_per_group: 4, ..a };
        assert_ne!(a.label(), b.label());
        assert_eq!(a.label(), "MKL row/cmp p=4 t=6");
        let c = CpuDgemmConfig { pinning: Pinning::Scatter, ..a };
        assert_eq!(c.label(), "MKL row/sct p=4 t=6");
    }
}
