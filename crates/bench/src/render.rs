//! Minimal aligned-column text rendering for the `repro` binary.

/// Renders rows of cells as aligned columns with a header rule.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_columns() {
        let t = table(
            &["BS", "time"],
            &[vec!["8".into(), "1.25".into()], vec!["32".into(), "0.7".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("BS"));
        assert!(lines[2].ends_with("1.25"));
    }

    #[test]
    fn pct_format() {
        assert_eq!(pct(0.125), "12.5%");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        table(&["a", "b"], &[vec!["1".into()]]);
    }
}
