//! Strong energy proportionality: `E_d = c × W`.
//!
//! The strong notion of EP "signifies that `E_d = c × W` for an EP system
//! where c is a constant and W is the work performed", i.e. dynamic energy
//! increases *linearly through the origin* with work. The test fits that
//! model to (work, energy) observations and asks whether the worst
//! relative departure stays within a tolerance.

use enprop_stats::regress::LinearFit;
use enprop_units::{Joules, Work};
use serde::{Deserialize, Serialize};

/// Configuration of the strong-EP test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StrongEpTest {
    /// Maximum tolerated relative residual from the `E = c·W` line.
    ///
    /// The paper measures to 2.5% precision; the default tolerance of 10%
    /// is generous — real processors violate it by integer factors.
    pub tolerance: f64,
}

impl Default for StrongEpTest {
    fn default() -> Self {
        Self { tolerance: 0.10 }
    }
}

/// Outcome of the strong-EP test.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StrongEpReport {
    /// The fitted proportionality constant `c`.
    pub c: f64,
    /// R² of the through-origin fit.
    pub r_squared: f64,
    /// Worst relative residual `max |E − c·W| / E`.
    pub max_rel_residual: f64,
    /// The tolerance the verdict used.
    pub tolerance: f64,
    /// `true` when the system is strongly energy-proportional for these
    /// observations.
    pub holds: bool,
}

impl StrongEpTest {
    /// Runs the test on paired (work, dynamic-energy) observations.
    /// Panics with fewer than three points (a line through the origin
    /// trivially fits one).
    pub fn run(&self, points: &[(Work, Joules)]) -> StrongEpReport {
        assert!(points.len() >= 3, "strong-EP test needs at least 3 points");
        let w: Vec<f64> = points.iter().map(|p| p.0.value()).collect();
        let e: Vec<f64> = points.iter().map(|p| p.1.value()).collect();
        assert!(
            w.iter().all(|v| *v > 0.0) && e.iter().all(|v| *v >= 0.0),
            "work must be positive and energy non-negative"
        );
        let fit = LinearFit::fit_through_origin(&w, &e);
        let max_rel_residual = fit.max_rel_residual(&w, &e);
        StrongEpReport {
            c: fit.slope,
            r_squared: fit.r_squared,
            max_rel_residual,
            tolerance: self.tolerance,
            holds: max_rel_residual <= self.tolerance,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(v: &[(f64, f64)]) -> Vec<(Work, Joules)> {
        v.iter().map(|&(w, e)| (Work(w), Joules(e))).collect()
    }

    #[test]
    fn perfectly_proportional_system_passes() {
        let data = pts(&[(1.0, 3.0), (2.0, 6.0), (5.0, 15.0), (10.0, 30.0)]);
        let r = StrongEpTest::default().run(&data);
        assert!(r.holds);
        assert!((r.c - 3.0).abs() < 1e-12);
        assert!(r.max_rel_residual < 1e-12);
        assert!((r.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mild_noise_within_tolerance_passes() {
        let data = pts(&[(1.0, 3.1), (2.0, 5.9), (5.0, 15.2), (10.0, 29.5)]);
        let r = StrongEpTest::default().run(&data);
        assert!(r.holds, "{r:?}");
    }

    #[test]
    fn superlinear_energy_fails() {
        // E ∝ W^1.5 — the kind of curve Fig. 1 shows.
        let data: Vec<(Work, Joules)> =
            (1..=10).map(|i| (Work(i as f64), Joules((i as f64).powf(1.5)))).collect();
        let r = StrongEpTest::default().run(&data);
        assert!(!r.holds);
        assert!(r.max_rel_residual > 0.10);
    }

    #[test]
    fn offset_energy_fails_through_origin_test() {
        // E = 10 + W fits a *line* but not a line through the origin:
        // constant overheads violate strong EP at small work.
        let data: Vec<(Work, Joules)> =
            (1..=10).map(|i| (Work(i as f64), Joules(10.0 + i as f64))).collect();
        let r = StrongEpTest::default().run(&data);
        assert!(!r.holds);
    }

    #[test]
    fn tolerance_is_respected() {
        let data = pts(&[(1.0, 3.0), (2.0, 6.0), (4.0, 13.0)]); // ~8% off at 4
        assert!(!StrongEpTest { tolerance: 0.01 }.run(&data).holds);
        assert!(StrongEpTest { tolerance: 0.25 }.run(&data).holds);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn too_few_points_rejected() {
        StrongEpTest::default().run(&pts(&[(1.0, 1.0), (2.0, 2.0)]));
    }
}
