//! Bench + regeneration of the Sec. III two-core theorem table.

use criterion::{criterion_group, criterion_main, Criterion};
use enprop_bench::figures::theory;

fn bench(c: &mut Criterion) {
    println!("{}", theory::render());
    c.bench_function("theory/generate", |b| b.iter(theory::generate));
}

criterion_group!(benches, bench);
criterion_main!(benches);
