#![warn(missing_docs)]

//! The paper's primary contribution: a formalization of energy
//! proportionality (EP) and the machinery to test, quantify and explain
//! its violation.
//!
//! * [`strong`] — **strong EP**: dynamic energy grows linearly with work,
//!   `E_d = c × W`. Tested by a through-origin fit and its worst relative
//!   residual (Fig. 1's question).
//! * [`weak`] — **weak EP**: dynamic energy is a *constant* across all
//!   load-balanced application configurations solving the same workload.
//!   Tested by the spread of per-configuration energies (Figs. 2, 7, 8's
//!   question).
//! * [`two_core`] — the paper's §III theorem: two homogeneous cores obeying
//!   the simple EP model (`P = a·U`, `t = b/U`) *necessarily* consume more
//!   dynamic energy whenever their utilizations diverge, with the exact
//!   Eqs. (1)–(3) and an n-core generalization.
//! * [`metrics`] — EP metrics from the literature the paper surveys
//!   (Ryckbosch et al.'s area metric, Barroso & Hölzle's dynamic range).
//! * [`additivity`] — the energy-predictive-model theory: the additivity
//!   property for selecting performance events as model variables, and
//!   linear dynamic-energy model construction on top of them.
//! * [`partition`] — the bi-objective workload-partitioning solver of the
//!   methodology lineage the paper builds on (§II-A): exact
//!   Pareto-optimal workload distributions over heterogeneous processors.
//! * [`audit`] — one-call bi-objective EP audits of configuration clouds.

pub mod additivity;
pub mod audit;
pub mod metrics;
pub mod partition;
pub mod strong;
pub mod two_core;
pub mod weak;

pub use additivity::{additivity_error, fixed_component_fit, AdditivityReport, EnergyModelBuilder};
pub use audit::BiObjectiveAudit;
pub use partition::{DiscreteProfile, Distribution, Partitioner};
pub use metrics::{dynamic_range, ep_metric_area, ep_metric_hsu_poole, proportionality_gap};
pub use strong::{StrongEpReport, StrongEpTest};
pub use two_core::{SimpleEpCore, TwoCoreAnalysis};
pub use weak::{WeakEpReport, WeakEpTest};
