//! Special functions: ln-gamma, regularized incomplete gamma and beta,
//! and the error function.
//!
//! Implementations follow the classical series / continued-fraction
//! formulations (Abramowitz & Stegun; Numerical Recipes) with double
//! precision accuracy sufficient for inference at the paper's 95%/2.5%
//! precision levels (absolute error well below 1e-10 over the tested
//! domains).

/// Relative convergence tolerance for series and continued fractions.
const EPS: f64 = 1.0e-14;
/// A number near the smallest representable, used to avoid division by zero
/// in the Lentz continued-fraction algorithm.
const FPMIN: f64 = 1.0e-300;
/// Iteration cap for series/continued fractions.
const MAX_ITER: usize = 500;

/// Natural log of the gamma function, `ln Γ(x)` for `x > 0`.
///
/// Lanczos approximation (g = 7, 9 coefficients); relative error < 2e-10.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients for g = 7.
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.5203681218851,
        -1259.1392167224028,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507343278686905,
        -0.13857109526572012,
        9.984_369_578_019_572e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a,x) / Γ(a)`.
///
/// `P(a, ·)` is the CDF of a Gamma(a, 1) variable; `ChiSquared(k).cdf(x) =
/// P(k/2, x/2)`.
pub fn reg_gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "invalid args to reg_gamma_p: a={a} x={x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_series(a, x)
    } else {
        1.0 - gamma_cont_frac(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
pub fn reg_gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "invalid args to reg_gamma_q: a={a} x={x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_series(a, x)
    } else {
        gamma_cont_frac(a, x)
    }
}

/// Series representation of `P(a, x)`, accurate for `x < a + 1`.
fn gamma_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued-fraction representation of `Q(a, x)`, accurate for `x ≥ a + 1`.
fn gamma_cont_frac(a: f64, x: f64) -> f64 {
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Regularized incomplete beta function `I_x(a, b)` for `x ∈ [0, 1]`.
///
/// `I_x(a, b)` is the CDF of a Beta(a, b) variable and yields the Student-t
/// CDF via `I_{ν/(ν+t²)}(ν/2, 1/2)`.
pub fn reg_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "invalid shape args to reg_beta: a={a} b={b}");
    assert!((0.0..=1.0).contains(&x), "reg_beta requires x in [0,1], got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front =
        ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Use the continued fraction directly when it converges fast, otherwise
    // its symmetry transform.
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cont_frac(a, b, x) / a
    } else {
        1.0 - front * beta_cont_frac(b, a, 1.0 - x) / b
    }
}

/// Lentz continued fraction for the incomplete beta function.
fn beta_cont_frac(a: f64, b: f64, x: f64) -> f64 {
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Error function `erf(x)`, via the incomplete gamma function.
pub fn erf(x: f64) -> f64 {
    if x >= 0.0 {
        reg_gamma_p(0.5, x * x)
    } else {
        -reg_gamma_p(0.5, x * x)
    }
}

/// Complementary error function `erfc(x) = 1 − erf(x)`.
pub fn erfc(x: f64) -> f64 {
    if x >= 0.0 {
        reg_gamma_q(0.5, x * x)
    } else {
        1.0 + reg_gamma_p(0.5, x * x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n−1)!
        let facts = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (i, &f) in facts.iter().enumerate() {
            close(ln_gamma((i + 1) as f64), f64::ln(f), 1e-10);
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π.
        close(ln_gamma(0.5), 0.5 * std::f64::consts::PI.ln(), 1e-10);
        // Γ(3/2) = √π / 2.
        close(
            ln_gamma(1.5),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-10,
        );
    }

    #[test]
    fn incomplete_gamma_known_values() {
        // P(1, x) = 1 − e^{−x} (exponential CDF).
        for &x in &[0.1, 0.5, 1.0, 2.0, 5.0, 10.0] {
            close(reg_gamma_p(1.0, x), 1.0 - (-x).exp(), 1e-12);
        }
        // Complementarity.
        for &(a, x) in &[(0.5, 0.3), (2.0, 2.0), (5.0, 3.0), (10.0, 20.0)] {
            close(reg_gamma_p(a, x) + reg_gamma_q(a, x), 1.0, 1e-12);
        }
    }

    #[test]
    fn incomplete_beta_known_values() {
        // I_x(1, 1) = x (uniform CDF).
        for &x in &[0.0, 0.25, 0.5, 0.75, 1.0] {
            close(reg_beta(1.0, 1.0, x), x, 1e-12);
        }
        // I_x(2, 2) = 3x² − 2x³.
        for &x in &[0.2, 0.5, 0.8] {
            close(reg_beta(2.0, 2.0, x), 3.0 * x * x - 2.0 * x * x * x, 1e-10);
        }
        // Symmetry: I_x(a, b) = 1 − I_{1−x}(b, a).
        close(reg_beta(3.0, 5.0, 0.3), 1.0 - reg_beta(5.0, 3.0, 0.7), 1e-12);
    }

    #[test]
    fn erf_known_values() {
        close(erf(0.0), 0.0, 1e-14);
        close(erf(1.0), 0.8427007929497149, 1e-10);
        close(erf(-1.0), -0.8427007929497149, 1e-10);
        close(erf(2.0), 0.9953222650189527, 1e-10);
        close(erfc(1.0), 1.0 - 0.8427007929497149, 1e-10);
        close(erfc(-1.0), 1.0 + 0.8427007929497149, 1e-10);
    }

    #[test]
    fn monotonicity_of_cdf_building_blocks() {
        let mut prev = 0.0;
        for i in 1..100 {
            let x = i as f64 * 0.2;
            let p = reg_gamma_p(3.0, x);
            assert!(p >= prev);
            prev = p;
        }
    }
}
