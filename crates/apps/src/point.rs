//! The common shape of one measured experimental point.

use enprop_pareto::BiPoint;
use enprop_units::{Joules, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// One application configuration's measured (time, dynamic-energy) point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataPoint<C> {
    /// The configuration that produced the point.
    pub config: C,
    /// Mean execution time over the repetitions.
    pub time: Seconds,
    /// Mean dynamic energy over the repetitions.
    pub dynamic_energy: Joules,
    /// Repetitions the statistical protocol needed.
    pub reps: usize,
    /// Whether the confidence-interval stopping rule was satisfied.
    pub converged: bool,
}

impl<C> DataPoint<C> {
    /// Mean dynamic power of the point.
    pub fn dynamic_power(&self) -> Watts {
        self.dynamic_energy / self.time
    }

    /// Projection onto the bi-objective plane for Pareto analysis.
    pub fn bi_point(&self) -> BiPoint {
        BiPoint::new(self.time.value(), self.dynamic_energy.value())
    }

    /// Maps the configuration payload, keeping the measurements.
    pub fn map_config<D>(self, f: impl FnOnce(C) -> D) -> DataPoint<D> {
        DataPoint {
            config: f(self.config),
            time: self.time,
            dynamic_energy: self.dynamic_energy,
            reps: self.reps,
            converged: self.converged,
        }
    }
}

/// Extracts the bi-objective cloud of a point set.
pub fn bi_points<C>(points: &[DataPoint<C>]) -> Vec<BiPoint> {
    points.iter().map(|p| p.bi_point()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let p = DataPoint {
            config: "x",
            time: Seconds(2.0),
            dynamic_energy: Joules(300.0),
            reps: 5,
            converged: true,
        };
        assert_eq!(p.dynamic_power(), Watts(150.0));
        assert_eq!(p.bi_point(), BiPoint::new(2.0, 300.0));
        let q = p.clone().map_config(|c| c.len());
        assert_eq!(q.config, 1);
        assert_eq!(q.time, p.time);
    }

    #[test]
    fn cloud_projection() {
        let pts = vec![
            DataPoint {
                config: 1,
                time: Seconds(1.0),
                dynamic_energy: Joules(10.0),
                reps: 3,
                converged: true,
            },
            DataPoint {
                config: 2,
                time: Seconds(2.0),
                dynamic_energy: Joules(5.0),
                reps: 3,
                converged: true,
            },
        ];
        let cloud = bi_points(&pts);
        assert_eq!(cloud.len(), 2);
        assert_eq!(cloud[1], BiPoint::new(2.0, 5.0));
    }
}
