//! Ordinary least-squares regression: simple linear, polynomial, and
//! multiple linear (for energy-predictive models over performance events).

use crate::linalg::{least_squares, Matrix};

/// Result of a simple linear fit `y ≈ intercept + slope·x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Intercept term.
    pub intercept: f64,
    /// Slope term.
    pub slope: f64,
    /// Coefficient of determination R² ∈ [0, 1] (1 for a perfect fit).
    pub r_squared: f64,
}

impl LinearFit {
    /// Fits `y = a + b x` by least squares. Panics on fewer than two points
    /// or mismatched lengths; returns a zero-slope fit for constant `x`.
    pub fn fit(xs: &[f64], ys: &[f64]) -> Self {
        assert_eq!(xs.len(), ys.len(), "x/y length mismatch");
        assert!(xs.len() >= 2, "linear fit needs at least two points");
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let sxx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
        let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let slope = if sxx == 0.0 { 0.0 } else { sxy / sxx };
        let intercept = my - slope * mx;
        let fit = Self { intercept, slope, r_squared: 0.0 };
        let r_squared = r_squared(ys, &xs.iter().map(|&x| fit.predict(x)).collect::<Vec<_>>());
        Self { r_squared, ..fit }
    }

    /// Fits `y = c x` (through the origin) — the strong-EP hypothesis
    /// `E_d = c × W`.
    pub fn fit_through_origin(xs: &[f64], ys: &[f64]) -> Self {
        assert_eq!(xs.len(), ys.len(), "x/y length mismatch");
        assert!(!xs.is_empty(), "fit needs at least one point");
        let sxx: f64 = xs.iter().map(|x| x * x).sum();
        let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| x * y).sum();
        let slope = if sxx == 0.0 { 0.0 } else { sxy / sxx };
        let fit = Self { intercept: 0.0, slope, r_squared: 0.0 };
        let r_squared = r_squared(ys, &xs.iter().map(|&x| fit.predict(x)).collect::<Vec<_>>());
        Self { r_squared, ..fit }
    }

    /// Predicted value at `x`.
    #[inline]
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }

    /// Maximum relative residual `max |y − ŷ| / |y|` over the data — the
    /// worst-case departure from linearity.
    pub fn max_rel_residual(&self, xs: &[f64], ys: &[f64]) -> f64 {
        xs.iter()
            .zip(ys)
            .map(|(&x, &y)| {
                if y == 0.0 {
                    0.0
                } else {
                    ((y - self.predict(x)) / y).abs()
                }
            })
            .fold(0.0, f64::max)
    }
}

/// Result of a polynomial fit `y ≈ Σ coeffs[k]·x^k`.
#[derive(Debug, Clone, PartialEq)]
pub struct PolyFit {
    /// Coefficients in ascending-power order.
    pub coeffs: Vec<f64>,
    /// Coefficient of determination R².
    pub r_squared: f64,
}

impl PolyFit {
    /// Fits a polynomial of the given degree. Returns `None` when the
    /// Vandermonde normal equations are singular (e.g. duplicate x values
    /// with degree ≥ points). Normalizes x to [−1, 1] internally for
    /// conditioning but reports coefficients in the original coordinates
    /// only through [`PolyFit::predict`].
    pub fn fit(xs: &[f64], ys: &[f64], degree: usize) -> Option<Self> {
        assert_eq!(xs.len(), ys.len(), "x/y length mismatch");
        assert!(xs.len() > degree, "need more points than the degree");
        let n = xs.len();
        let mut design = Matrix::zeros(n, degree + 1);
        for (i, &x) in xs.iter().enumerate() {
            let mut pow = 1.0;
            for j in 0..=degree {
                design[(i, j)] = pow;
                pow *= x;
            }
        }
        let coeffs = least_squares(&design, ys)?;
        let preds: Vec<f64> = xs
            .iter()
            .map(|&x| {
                let mut acc = 0.0;
                let mut pow = 1.0;
                for &c in &coeffs {
                    acc += c * pow;
                    pow *= x;
                }
                acc
            })
            .collect();
        let r2 = r_squared(ys, &preds);
        Some(Self { coeffs, r_squared: r2 })
    }

    /// Predicted value at `x` (Horner evaluation).
    pub fn predict(&self, x: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    /// True when the quadratic term is negative — the "polynomial concave
    /// trend line" reported for power-vs-utilization in the EP literature.
    pub fn is_concave_quadratic(&self) -> bool {
        self.coeffs.len() == 3 && self.coeffs[2] < 0.0
    }
}

/// Result of a multiple linear regression `y ≈ β₀ + Σ βⱼ xⱼ`.
///
/// This is the shape of linear *energy predictive models*: dynamic energy
/// regressed on performance-event counts.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiLinearFit {
    /// β coefficients: intercept first, then one per regressor column.
    pub beta: Vec<f64>,
    /// Coefficient of determination R².
    pub r_squared: f64,
}

impl MultiLinearFit {
    /// Fits `y` on the rows of `xs` (each row = one observation's regressor
    /// vector). Returns `None` on collinear regressors.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64]) -> Option<Self> {
        assert_eq!(xs.len(), ys.len(), "x/y length mismatch");
        assert!(!xs.is_empty(), "fit needs observations");
        let k = xs[0].len();
        assert!(xs.iter().all(|r| r.len() == k), "ragged regressor rows");
        assert!(xs.len() > k, "need more observations than regressors");
        let mut design = Matrix::zeros(xs.len(), k + 1);
        for (i, row) in xs.iter().enumerate() {
            design[(i, 0)] = 1.0;
            for (j, &v) in row.iter().enumerate() {
                design[(i, j + 1)] = v;
            }
        }
        let beta = least_squares(&design, ys)?;
        let preds: Vec<f64> = xs
            .iter()
            .map(|row| beta[0] + row.iter().zip(&beta[1..]).map(|(x, b)| x * b).sum::<f64>())
            .collect();
        let r2 = r_squared(ys, &preds);
        Some(Self { beta, r_squared: r2 })
    }

    /// Predicted value for a regressor vector.
    pub fn predict(&self, row: &[f64]) -> f64 {
        assert_eq!(row.len() + 1, self.beta.len(), "regressor length mismatch");
        self.beta[0] + row.iter().zip(&self.beta[1..]).map(|(x, b)| x * b).sum::<f64>()
    }
}

/// Coefficient of determination of predictions against observations.
/// Defined as `1 − SS_res / SS_tot`; reported as 1 for a constant `y`
/// perfectly predicted and 0 for a constant `y` mispredicted.
pub fn r_squared(ys: &[f64], preds: &[f64]) -> f64 {
    assert_eq!(ys.len(), preds.len(), "length mismatch in r_squared");
    let my = ys.iter().sum::<f64>() / ys.len() as f64;
    let ss_tot: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
    let ss_res: f64 = ys.iter().zip(preds).map(|(y, p)| (y - p).powi(2)).sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_fit_exact() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys: Vec<f64> = xs.iter().map(|x| 5.0 - 2.0 * x).collect();
        let f = LinearFit::fit(&xs, &ys);
        assert!((f.intercept - 5.0).abs() < 1e-12);
        assert!((f.slope + 2.0).abs() < 1e-12);
        assert!((f.r_squared - 1.0).abs() < 1e-12);
        assert!(f.max_rel_residual(&xs, &ys) < 1e-12);
    }

    #[test]
    fn linear_fit_noisy_r2_below_one() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [2.1, 3.9, 6.2, 7.8, 10.3];
        let f = LinearFit::fit(&xs, &ys);
        assert!(f.r_squared > 0.99 && f.r_squared < 1.0);
        assert!((f.slope - 2.0).abs() < 0.2);
    }

    #[test]
    fn through_origin_fit() {
        let xs = [1.0, 2.0, 4.0];
        let ys = [3.0, 6.0, 12.0];
        let f = LinearFit::fit_through_origin(&xs, &ys);
        assert_eq!(f.intercept, 0.0);
        assert!((f.slope - 3.0).abs() < 1e-12);
        assert!((f.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_x_gives_flat_fit() {
        let f = LinearFit::fit(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]);
        assert_eq!(f.slope, 0.0);
        assert!((f.intercept - 2.0).abs() < 1e-12);
    }

    #[test]
    fn poly_fit_recovers_quadratic() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 1.0 + 2.0 * x - 0.5 * x * x).collect();
        let f = PolyFit::fit(&xs, &ys, 2).unwrap();
        assert!((f.coeffs[0] - 1.0).abs() < 1e-8);
        assert!((f.coeffs[1] - 2.0).abs() < 1e-8);
        assert!((f.coeffs[2] + 0.5).abs() < 1e-8);
        assert!(f.is_concave_quadratic());
        assert!((f.predict(3.0) - (1.0 + 6.0 - 4.5)).abs() < 1e-8);
    }

    #[test]
    fn poly_fit_convex_not_flagged_concave() {
        let xs: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x * x).collect();
        let f = PolyFit::fit(&xs, &ys, 2).unwrap();
        assert!(!f.is_concave_quadratic());
    }

    #[test]
    fn multi_linear_fit_exact() {
        // y = 1 + 2a − 3b.
        let xs: Vec<Vec<f64>> = (0..12)
            .map(|i| vec![(i % 4) as f64, (i / 4) as f64])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|r| 1.0 + 2.0 * r[0] - 3.0 * r[1]).collect();
        let f = MultiLinearFit::fit(&xs, &ys).unwrap();
        assert!((f.beta[0] - 1.0).abs() < 1e-9);
        assert!((f.beta[1] - 2.0).abs() < 1e-9);
        assert!((f.beta[2] + 3.0).abs() < 1e-9);
        assert!((f.predict(&[2.0, 1.0]) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn multi_linear_collinear_detected() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let ys: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert!(MultiLinearFit::fit(&xs, &ys).is_none());
    }

    #[test]
    fn r_squared_edge_cases() {
        assert_eq!(r_squared(&[1.0, 1.0], &[1.0, 1.0]), 1.0);
        assert_eq!(r_squared(&[1.0, 1.0], &[0.0, 2.0]), 0.0);
    }
}
