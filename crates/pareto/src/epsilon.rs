//! ε-dominance: sparse approximate fronts for expensive sweeps.
//!
//! The paper notes that "determining a global Pareto front by exhaustively
//! obtaining the data points for all the application configurations can be
//! expensive and may not be feasible in dynamic environments with time
//! constraints". An ε-front keeps only points that improve on every kept
//! point by at least a relative ε in some objective — a principled way to
//! thin a front (or to compare fronts from subsampled sweeps).

use crate::front::{pareto_front, BiPoint};

/// True when `a` ε-dominates `b`: `a` is no worse than `b` relaxed by a
/// relative ε in both objectives, `a ≤ (1 + ε)·b` component-wise
/// (Laumanns et al.'s multiplicative ε-dominance).
pub fn epsilon_dominates(a: &BiPoint, b: &BiPoint, eps: f64) -> bool {
    assert!(eps >= 0.0, "epsilon must be non-negative");
    let f = 1.0 + eps;
    a.time <= b.time * f && a.energy <= b.energy * f
}

/// The ε-Pareto front: a subset of the exact front such that every exact
/// front point is ε-dominated by some kept point. Returns indices into
/// `points`, sorted by increasing time. `eps = 0` reduces to the exact
/// front.
pub fn epsilon_front(points: &[BiPoint], eps: f64) -> Vec<usize> {
    assert!(eps >= 0.0, "epsilon must be non-negative");
    let exact = pareto_front(points);
    if eps == 0.0 {
        return exact;
    }
    let mut kept: Vec<usize> = Vec::new();
    for &i in &exact {
        let covered = kept.iter().any(|&k| epsilon_dominates(&points[k], &points[i], eps));
        if !covered {
            kept.push(i);
        }
    }
    kept
}

/// Zitzler's coverage metric `C(A, B)`: the fraction of points in `b`
/// weakly dominated by some point of `a`. `C(A, B) = 1` means A covers B
/// entirely; the metric is *not* symmetric.
pub fn coverage(a: &[BiPoint], b: &[BiPoint]) -> f64 {
    assert!(!b.is_empty(), "coverage needs a non-empty B");
    let covered = b
        .iter()
        .filter(|q| a.iter().any(|p| p.dominates(q) || *p == **q))
        .count();
    covered as f64 / b.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(v: &[(f64, f64)]) -> Vec<BiPoint> {
        v.iter().map(|&(t, e)| BiPoint::new(t, e)).collect()
    }

    #[test]
    fn zero_eps_is_exact_front() {
        let cloud = pts(&[(1.0, 4.0), (2.0, 3.0), (3.0, 2.0), (2.5, 9.0)]);
        assert_eq!(epsilon_front(&cloud, 0.0), pareto_front(&cloud));
    }

    #[test]
    fn eps_front_thins_dense_fronts() {
        // Ten nearly-identical trade-off points 1% apart.
        let cloud: Vec<BiPoint> = (0..10)
            .map(|i| BiPoint::new(1.0 + 0.01 * i as f64, 2.0 - 0.01 * i as f64))
            .collect();
        let exact = pareto_front(&cloud);
        assert_eq!(exact.len(), 10);
        let sparse = epsilon_front(&cloud, 0.10);
        assert!(sparse.len() < exact.len());
        assert!(!sparse.is_empty());
        // Every exact point is ε-covered by some kept point.
        for &i in &exact {
            assert!(
                sparse.iter().any(|&k| epsilon_dominates(&cloud[k], &cloud[i], 0.10)),
                "point {i} uncovered"
            );
        }
    }

    #[test]
    fn eps_front_preserves_distant_points() {
        let cloud = pts(&[(1.0, 100.0), (10.0, 1.0)]);
        assert_eq!(epsilon_front(&cloud, 0.1).len(), 2);
    }

    #[test]
    fn epsilon_dominance_strictness() {
        let a = BiPoint::new(1.0, 1.0);
        let b = BiPoint::new(1.05, 1.05);
        // a beats b outright, so it ε-dominates at any ε.
        assert!(epsilon_dominates(&a, &b, 0.0));
        // b ε-dominates a only once ε covers the 5% gap.
        assert!(!epsilon_dominates(&b, &a, 0.01));
        assert!(epsilon_dominates(&b, &a, 0.05));
    }

    #[test]
    fn coverage_metric() {
        let strong = pts(&[(1.0, 1.0)]);
        let weak = pts(&[(2.0, 2.0), (3.0, 1.5)]);
        assert_eq!(coverage(&strong, &weak), 1.0);
        assert_eq!(coverage(&weak, &strong), 0.0);
        // Self-coverage is 1 (weak dominance includes equality).
        assert_eq!(coverage(&weak, &weak), 1.0);
    }

    #[test]
    fn coverage_partial() {
        let a = pts(&[(1.0, 5.0)]);
        let b = pts(&[(2.0, 6.0), (0.5, 1.0)]);
        assert!((coverage(&a, &b) - 0.5).abs() < 1e-12);
    }
}
