//! A functional CUDA-style execution emulator.
//!
//! The emulator runs kernels the way the paper's GPUs do, structurally: a
//! grid of thread blocks, each block a 2-D array of threads that share a
//! per-block scratch memory and synchronize with barrier semantics
//! (`__syncthreads`). Threads are real OS threads; shared and global memory
//! are atomic-backed so the emulation is data-race-free in Rust while
//! preserving CUDA's memory-model obligations (the kernels under study
//! only communicate through barrier-separated phases).
//!
//! Its purpose is *semantic ground truth* at small N:
//!
//! * the tiled DGEMM of the paper's Fig. 5 ([`tiled_dgemm`]) is executed
//!   for every `(BS, G, R)` and validated against a reference matmul;
//! * every memory access, flop and barrier is counted ([`mem::EventCounters`]),
//!   and the counts cross-validate the analytic CUPTI model
//!   ([`crate::cupti::CuptiReport`]) exactly.

pub mod exec;
pub mod fft_kernel;
pub mod mem;
pub mod tiled_dgemm;

pub use exec::{launch, Dim2, ThreadCtx};
pub use fft_kernel::EmuRowFft;
pub use mem::{EmuEvents, EventCounters, GlobalMem, SharedMem};
pub use tiled_dgemm::EmuDgemm;
