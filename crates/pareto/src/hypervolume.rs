//! The dominated-hypervolume quality indicator for 2-D fronts.

use crate::front::{pareto_front, BiPoint};

/// Area dominated by the front of `points` with respect to a reference
/// point (both objectives minimized; the reference must be weakly worse
/// than every front point, or the contribution of points beyond it is
/// clipped to zero).
///
/// Larger is better; 0 when no point improves on the reference.
pub fn hypervolume_2d(points: &[BiPoint], reference: BiPoint) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    let front = pareto_front(points);
    let mut hv = 0.0;
    // Front is sorted by time ascending / energy descending; sweep left to
    // right, each point contributes a rectangle up to the previous point's
    // energy level.
    let mut prev_energy = reference.energy;
    for &i in &front {
        let p = points[i];
        if p.time >= reference.time || p.energy >= prev_energy {
            continue;
        }
        hv += (reference.time - p.time) * (prev_energy - p.energy);
        prev_energy = p.energy;
    }
    hv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_point_rectangle() {
        let hv = hypervolume_2d(&[BiPoint::new(1.0, 1.0)], BiPoint::new(3.0, 4.0));
        assert!((hv - 6.0).abs() < 1e-12);
    }

    #[test]
    fn dominated_point_adds_nothing() {
        let base = hypervolume_2d(&[BiPoint::new(1.0, 1.0)], BiPoint::new(3.0, 3.0));
        let with_dom = hypervolume_2d(
            &[BiPoint::new(1.0, 1.0), BiPoint::new(2.0, 2.0)],
            BiPoint::new(3.0, 3.0),
        );
        assert!((base - with_dom).abs() < 1e-12);
    }

    #[test]
    fn two_tradeoff_points_union_area() {
        // Points (1,2) and (2,1), ref (3,3):
        // union = rect(1..3 x 2..3) [area 2] + rect(2..3 x 1..2) [area 1]
        //       + shared? Sweep: (1,2): (3-1)*(3-2)=2; (2,1): (3-2)*(2-1)=1 → 3.
        let hv = hypervolume_2d(
            &[BiPoint::new(1.0, 2.0), BiPoint::new(2.0, 1.0)],
            BiPoint::new(3.0, 3.0),
        );
        assert!((hv - 3.0).abs() < 1e-12);
    }

    #[test]
    fn point_beyond_reference_is_clipped() {
        let hv = hypervolume_2d(&[BiPoint::new(5.0, 5.0)], BiPoint::new(3.0, 3.0));
        assert_eq!(hv, 0.0);
    }

    #[test]
    fn empty_cloud() {
        assert_eq!(hypervolume_2d(&[], BiPoint::new(1.0, 1.0)), 0.0);
    }

    #[test]
    fn more_front_points_never_decrease_hv() {
        let reference = BiPoint::new(10.0, 10.0);
        let small = vec![BiPoint::new(2.0, 5.0)];
        let big = vec![BiPoint::new(2.0, 5.0), BiPoint::new(4.0, 2.0), BiPoint::new(1.0, 8.0)];
        assert!(hypervolume_2d(&big, reference) >= hypervolume_2d(&small, reference));
    }
}
