//! The parallel sweep engine.
//!
//! Every figure in the paper is produced by sweeping a configuration space
//! (all `(BS, G, R)` kernels, all DGEMM thread groups, all FFT sizes) and
//! measuring each configuration through the simulated meter. The sweeps are
//! embarrassingly parallel — *except* that the measurement pipeline is
//! stochastic, and a naive fan-out would make the noise a configuration
//! sees depend on which worker measured it and what that worker measured
//! before. Results would then change with thread count, which is poison for
//! a reproduction harness.
//!
//! [`SweepExecutor`] solves this with **deterministic seed-splitting**: a
//! sweep owns one `sweep_seed`, and configuration `i` is always measured
//! under [`split_seed`]`(sweep_seed, i)` — a SplitMix64-style finalizer over
//! the pair — regardless of the worker that picks it up. Worker-local
//! [`MeasurementRunner`]s are reseeded with that per-configuration seed
//! before each measurement, so the noise stream a configuration sees is a
//! pure function of `(sweep_seed, index)`. Results come back in enumeration
//! order. The upshot, verified by the determinism suite: a sweep run with
//! 1, 2, or 8 threads produces bitwise-identical output.
//!
//! The executor is generic over worker state, so model-only sweeps (no
//! measurement pipeline) reuse the same fan-out via [`SweepExecutor::map`].

use crate::runner::MeasurementRunner;
use enprop_power::{MeasureError, Meter};
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Write-once result slots shared by the sweep workers, one per item.
///
/// The scheduler guarantees each index is claimed by exactly one worker
/// (a `fetch_add` cursor hands out disjoint chunks), so each slot is
/// written exactly once, with no concurrent access — which makes a plain
/// `UnsafeCell<MaybeUninit<T>>` sound and replaces the previous
/// `Vec<Mutex<Option<T>>>` (a lock round-trip per result). The scope join
/// between the writes and [`into_vec`](ResultSlots::into_vec) provides the
/// happens-before edge that publishes the values. If a worker panics the
/// whole sweep panics at the scope join and the slots are leaked, never
/// read: no use of uninitialized memory.
struct ResultSlots<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
}

// SAFETY: sharing `&ResultSlots<T>` across workers is sound because the
// scheduler contract above guarantees no two threads ever touch the same
// slot (disjoint write-once indices), and the values themselves cross
// threads only at the scope join — hence the `T: Send` bound. No `&T` is
// ever produced while workers run, so `T: Sync` is not required.
unsafe impl<T: Send> Sync for ResultSlots<T> {}

impl<T> ResultSlots<T> {
    fn new(len: usize) -> Self {
        Self { slots: (0..len).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect() }
    }

    /// Writes the result for `i`.
    ///
    /// # Safety
    /// `i` must be claimed by exactly one worker, and written exactly once.
    #[inline]
    unsafe fn write(&self, i: usize, value: T) {
        // SAFETY: the caller guarantees index `i` belongs to this worker
        // alone, so no other thread holds a pointer into this slot and the
        // raw write cannot race; `slots[i]` bounds-checks the index.
        unsafe { (*self.slots[i].get()).write(value) };
    }

    /// Consumes the slots in index order.
    ///
    /// # Safety
    /// Every slot must have been written (all indices claimed and their
    /// workers joined).
    unsafe fn into_vec(self) -> Vec<T> {
        self.slots
            .into_vec()
            .into_iter()
            // SAFETY: the caller guarantees every index was claimed and the
            // claiming workers have joined, so each `MaybeUninit` holds an
            // initialized `T` and the join published it to this thread.
            .map(|slot| unsafe { slot.into_inner().assume_init() })
            .collect()
    }
}

/// Derives the seed for configuration `index` of a sweep seeded with
/// `sweep_seed`.
///
/// This is the SplitMix64 output function applied to
/// `sweep_seed + (index + 1) · φ64` (the golden-gamma increment). It is a
/// pure function of the pair — independent of evaluation order and thread
/// placement — and injective in `index` for a fixed seed, so distinct
/// configurations never share a noise stream. `index + 1` keeps
/// configuration 0 from degenerating to the raw sweep seed.
pub fn split_seed(sweep_seed: u64, index: usize) -> u64 {
    let gamma = 0x9E37_79B9_7F4A_7C15u64;
    let mut z = sweep_seed.wrapping_add(gamma.wrapping_mul(index as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic parallel sweep executor.
///
/// Holds the sweep seed and the worker count; fans work items out to
/// scoped worker threads, hands each item its [`split_seed`], and returns
/// results in enumeration order.
///
/// # Example
/// ```
/// use enprop_apps::parallel::SweepExecutor;
///
/// let exec = SweepExecutor::new(42).with_threads(4);
/// let squares = exec.map(&[1usize, 2, 3, 4], |x, _seed| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
#[derive(Debug, Clone)]
pub struct SweepExecutor {
    seed: u64,
    threads: usize,
}

impl SweepExecutor {
    /// An executor over all available cores, measuring under `seed`.
    pub fn new(seed: u64) -> Self {
        let threads =
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Self { seed, threads }
    }

    /// A single-threaded executor — the reference ordering every parallel
    /// run must reproduce bitwise.
    pub fn serial(seed: u64) -> Self {
        Self { seed, threads: 1 }
    }

    /// Overrides the worker count (clamped to at least 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The sweep seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The seed configuration `index` is measured under.
    pub fn config_seed(&self, index: usize) -> u64 {
        split_seed(self.seed, index)
    }

    /// Fans `items` out to workers that each own a state built by
    /// `make_state`, calling `f(state, item, config_seed)` per item.
    /// Results are returned in the order of `items`.
    ///
    /// Work distribution is a shared atomic cursor claimed in *chunks*
    /// (dynamic scheduling with amortized cursor traffic): each worker
    /// claims a run of consecutive indices per `fetch_add`, so cursor
    /// contention and per-item scheduling overhead shrink by the chunk
    /// length, while load imbalance between configurations still cannot
    /// idle workers for long. Each worker constructs its state once, before
    /// entering the steal loop. Results land in lock-free write-once slots
    /// ([`ResultSlots`]); because `f`'s output depends only on
    /// `(item, config_seed)`, the schedule cannot leak into the results.
    pub fn map_with<S, C, T>(
        &self,
        items: &[C],
        make_state: impl Fn() -> S + Sync,
        f: impl Fn(&mut S, &C, u64) -> T + Sync,
    ) -> Vec<T>
    where
        C: Sync,
        T: Send,
    {
        if items.is_empty() {
            return Vec::new();
        }
        let workers = self.threads.min(items.len());
        if workers <= 1 {
            let mut state = make_state();
            return items
                .iter()
                .enumerate()
                .map(|(i, item)| f(&mut state, item, self.config_seed(i)))
                .collect();
        }

        // Chunk length: ~4 claims per worker over the sweep balances cursor
        // amortization against tail imbalance; capped so enormous sweeps
        // still rebalance.
        let chunk = items.len().div_ceil(workers * 4).clamp(1, 64);
        let cursor = AtomicUsize::new(0);
        let slots = ResultSlots::new(items.len());
        let run_worker = || {
            // Worker state is built once per worker, outside the steal loop.
            let mut state = make_state();
            loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= items.len() {
                    break;
                }
                let end = (start + chunk).min(items.len());
                for (i, item) in (start..end).zip(&items[start..end]) {
                    let out = f(&mut state, item, self.config_seed(i));
                    // SAFETY: the `fetch_add` cursor hands out disjoint
                    // chunks, so index `i` is claimed by this worker alone
                    // and written exactly once — the contract of `write`.
                    unsafe { slots.write(i, out) };
                }
            }
        };
        crossbeam::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|_| run_worker());
            }
        })
        .expect("sweep worker panicked");

        // SAFETY: the scope joined every worker and all indices up to
        // `items.len()` were claimed, so every slot is initialized.
        unsafe { slots.into_vec() }
    }

    /// Stateless variant of [`map_with`](SweepExecutor::map_with) for
    /// model-only (noise-free) sweeps.
    pub fn map<C, T>(&self, items: &[C], f: impl Fn(&C, u64) -> T + Sync) -> Vec<T>
    where
        C: Sync,
        T: Send,
    {
        self.map_with(items, || (), |_, item, seed| f(item, seed))
    }

    /// Measurement fan-out: each worker owns a [`MeasurementRunner`] built
    /// by `make_runner`, and the runner is [reseeded](MeasurementRunner::reseed)
    /// with the item's [`config_seed`](SweepExecutor::config_seed) before
    /// `f` measures it — the contract that makes sweep output a pure
    /// function of `(sweep_seed, items)`.
    ///
    /// Panics if a reseed fails (a fault-injected baseline capture); use
    /// [`run_measured_with_retry`](SweepExecutor::run_measured_with_retry)
    /// when the meter can fail.
    pub fn run_measured<M, C, T>(
        &self,
        items: &[C],
        make_runner: impl Fn() -> MeasurementRunner<M> + Sync,
        f: impl Fn(&mut MeasurementRunner<M>, &C) -> T + Sync,
    ) -> Vec<T>
    where
        M: Meter,
        C: Sync,
        T: Send,
    {
        self.map_with(items, make_runner, |runner, item, seed| {
            runner.reseed(seed);
            f(runner, item)
        })
    }

    /// Fault-tolerant measurement fan-out: like
    /// [`run_measured`](SweepExecutor::run_measured), but a failed
    /// measurement is retried per `policy` instead of panicking, and
    /// configurations that exhaust their retries are *recorded* — never
    /// silently dropped, never fatal to the sweep.
    ///
    /// ## Determinism under retry
    ///
    /// Attempt 0 of configuration `i` is measured under
    /// [`config_seed`](SweepExecutor::config_seed)`(i)` — exactly the seed
    /// the non-retrying path uses, so a sweep where no fault fires is
    /// bitwise-identical to [`run_measured`](SweepExecutor::run_measured).
    /// Attempt `k > 0` reseeds with [`split_seed`]`(config_seed(i), k)`:
    /// every attempt's noise-and-fault stream is a pure function of
    /// `(sweep_seed, index, attempt)`, so which worker retries, and how
    /// many other configurations are in flight, cannot change any outcome.
    /// The determinism suite pins this at 1/2/8 threads.
    ///
    /// Non-transient errors ([`MeasureError::is_transient`] = false) fail
    /// immediately without burning retries.
    pub fn run_measured_with_retry<M, C, T>(
        &self,
        items: &[C],
        policy: RetryPolicy,
        make_runner: impl Fn() -> MeasurementRunner<M> + Sync,
        f: impl Fn(&mut MeasurementRunner<M>, &C) -> Result<T, MeasureError> + Sync,
    ) -> RobustSweep<C, T>
    where
        M: Meter,
        C: Clone + Sync,
        T: Send,
    {
        assert!(policy.max_attempts >= 1, "need at least one attempt");
        let outcomes = self.map_with(items, make_runner, |runner, item, config_seed| {
            let mut attempts = 0;
            loop {
                attempts += 1;
                // Attempt 0 uses the configuration seed itself (bitwise
                // identity with the non-retrying path); attempt k > 0 its
                // own substream.
                let attempt_seed = if attempts == 1 {
                    config_seed
                } else {
                    split_seed(config_seed, attempts - 1)
                };
                let result =
                    runner.try_reseed(attempt_seed).and_then(|()| f(runner, item));
                match result {
                    Ok(point) => return SweepOutcome::Ok { point, attempts },
                    Err(error) => {
                        if attempts >= policy.max_attempts || !error.is_transient() {
                            return SweepOutcome::Failed { attempts, error };
                        }
                        let delay = policy.backoff_delay(attempts);
                        if !delay.is_zero() {
                            std::thread::sleep(delay);
                        }
                    }
                }
            }
        });
        RobustSweep::collect(items, outcomes)
    }
}

/// Bounded retry-with-exponential-backoff for failed measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per configuration, including the first (≥ 1).
    pub max_attempts: usize,
    /// Delay before the first retry; doubles per subsequent retry.
    pub base_delay: Duration,
    /// Cap on the backoff delay.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    /// Three attempts, no delay: in the simulated rig a transient fault
    /// clears by re-drawing the stream, so sleeping buys nothing. Against
    /// real hardware, set `base_delay`/`max_delay` to ride out the
    /// condition (a wedged serial port, an EAGAIN-ing counter file).
    fn default() -> Self {
        Self { max_attempts: 3, base_delay: Duration::ZERO, max_delay: Duration::ZERO }
    }
}

impl RetryPolicy {
    /// Fail on the first error — the policy that makes
    /// [`run_measured_with_retry`](SweepExecutor::run_measured_with_retry)
    /// degrade to a recorded-failure version of
    /// [`run_measured`](SweepExecutor::run_measured).
    pub fn no_retry() -> Self {
        Self { max_attempts: 1, ..Self::default() }
    }

    /// A policy with `max_attempts` attempts and no delay.
    pub fn attempts(max_attempts: usize) -> Self {
        Self { max_attempts, ..Self::default() }
    }

    /// The delay before the retry that follows failed attempt `attempt`
    /// (1-based): `base_delay × 2^(attempt−1)`, capped at `max_delay`.
    pub fn backoff_delay(&self, attempt: usize) -> Duration {
        let doublings = u32::try_from(attempt.saturating_sub(1)).unwrap_or(u32::MAX);
        let delay = self
            .base_delay
            .checked_mul(2u32.checked_pow(doublings).unwrap_or(u32::MAX))
            .unwrap_or(Duration::MAX);
        delay.min(self.max_delay)
    }
}

/// What happened to one configuration of a fault-tolerant sweep.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepOutcome<T> {
    /// Measured successfully (possibly after retries).
    Ok {
        /// The measured point.
        point: T,
        /// Attempts spent, including the successful one.
        attempts: usize,
    },
    /// Every attempt failed; `error` is the *last* failure.
    Failed {
        /// Attempts spent.
        attempts: usize,
        /// The final error.
        error: MeasureError,
    },
}

/// One configuration that exhausted its retries.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepFailure<C> {
    /// The configuration that could not be measured.
    pub config: C,
    /// Its index in the sweep's enumeration order.
    pub index: usize,
    /// Attempts spent on it.
    pub attempts: usize,
    /// The last error observed.
    pub error: MeasureError,
}

/// The result of a fault-tolerant sweep: the measured points plus an exact
/// account of what could not be measured.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustSweep<C, T> {
    /// Successfully measured points, in enumeration order.
    pub points: Vec<T>,
    /// Configurations that exhausted their retries, in enumeration order.
    pub failures: Vec<SweepFailure<C>>,
    /// Configurations that needed more than one attempt (whether they
    /// eventually succeeded or not).
    pub retried: usize,
    /// Total configurations swept (`points.len() + failures.len()`).
    pub total: usize,
}

impl<C: Clone, T> RobustSweep<C, T> {
    fn collect(items: &[C], outcomes: Vec<SweepOutcome<T>>) -> Self {
        let total = outcomes.len();
        let mut points = Vec::with_capacity(total);
        let mut failures = Vec::new();
        let mut retried = 0;
        for (index, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                SweepOutcome::Ok { point, attempts } => {
                    if attempts > 1 {
                        retried += 1;
                    }
                    points.push(point);
                }
                SweepOutcome::Failed { attempts, error } => {
                    if attempts > 1 {
                        retried += 1;
                    }
                    failures.push(SweepFailure {
                        config: items[index].clone(),
                        index,
                        attempts,
                        error,
                    });
                }
            }
        }
        Self { points, failures, retried, total }
    }
}

impl<C, T> RobustSweep<C, T> {
    /// True when every configuration was measured.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }

    /// Number of configurations that exhausted their retries.
    pub fn failed_configs(&self) -> usize {
        self.failures.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enprop_power::FaultPlan;
    use enprop_units::{Seconds, Watts};

    #[test]
    fn map_preserves_enumeration_order() {
        let items: Vec<usize> = (0..100).collect();
        let exec = SweepExecutor::new(1).with_threads(8);
        let out = exec.map(&items, |x, _| x * 3);
        assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn map_with_thread_local_state_counts_all_items() {
        // Worker-local counters must jointly cover every item exactly once.
        let items: Vec<usize> = (0..57).collect();
        let exec = SweepExecutor::new(9).with_threads(4);
        let out = exec.map_with(
            &items,
            || 0usize,
            |count, item, _| {
                *count += 1;
                *item
            },
        );
        assert_eq!(out, items);
    }

    #[test]
    fn config_seeds_are_distinct_and_order_independent() {
        let exec = SweepExecutor::new(1234);
        let forward: Vec<u64> = (0..64).map(|i| exec.config_seed(i)).collect();
        let backward: Vec<u64> = (0..64).rev().map(|i| exec.config_seed(i)).collect();
        assert_eq!(forward, backward.into_iter().rev().collect::<Vec<_>>());
        let mut sorted = forward.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), forward.len(), "seed collision");
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let exec = SweepExecutor::new(7).with_threads(8);
        let out: Vec<u64> = exec.map(&[] as &[u32], |_, s| s);
        assert!(out.is_empty());
    }

    #[test]
    fn run_measured_is_thread_count_invariant() {
        // The tentpole contract at the executor level: identical measured
        // output for 1, 2, and 8 workers.
        let items: Vec<f64> = (1..=12).map(|i| 10.0 * i as f64).collect();
        let measure = |threads: usize| {
            SweepExecutor::new(77).with_threads(threads).run_measured(
                &items,
                || MeasurementRunner::new(Watts(90.0), 0),
                |runner, &steady| {
                    runner.measure(Seconds(20.0), Watts(steady), Watts::ZERO, Seconds::ZERO)
                },
            )
        };
        let serial = measure(1);
        assert_eq!(serial, measure(2));
        assert_eq!(serial, measure(8));
    }

    #[test]
    fn chunked_claiming_covers_every_length() {
        // Exercise chunk-boundary arithmetic: lengths around multiples of
        // the chunk size, odd worker counts, workers > items.
        for len in [1usize, 2, 3, 7, 16, 63, 64, 65, 129] {
            for threads in [2usize, 3, 8, 200] {
                let items: Vec<usize> = (0..len).collect();
                let exec = SweepExecutor::new(5).with_threads(threads);
                let out = exec.map(&items, |x, _| x + 1);
                let expect: Vec<usize> = (1..=len).collect();
                assert_eq!(out, expect, "len {len} threads {threads}");
            }
        }
    }

    #[test]
    fn results_are_bitwise_identical_across_chunking_schedules() {
        // The determinism contract must be independent of the chunk size
        // implied by the worker count.
        let items: Vec<f64> = (1..=40).map(|i| 5.0 * i as f64).collect();
        let measure = |threads: usize| {
            SweepExecutor::new(4242).with_threads(threads).run_measured(
                &items,
                || MeasurementRunner::new(Watts(90.0), 0),
                |runner, &steady| {
                    runner.measure(Seconds(20.0), Watts(steady), Watts::ZERO, Seconds::ZERO)
                },
            )
        };
        let serial = measure(1);
        for threads in [3usize, 5, 16] {
            assert_eq!(serial, measure(threads), "threads {threads}");
        }
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(35),
        };
        assert_eq!(p.backoff_delay(1), Duration::from_millis(10));
        assert_eq!(p.backoff_delay(2), Duration::from_millis(20));
        assert_eq!(p.backoff_delay(3), Duration::from_millis(35)); // capped
        assert_eq!(p.backoff_delay(60), Duration::from_millis(35)); // no overflow
        assert_eq!(RetryPolicy::default().backoff_delay(1), Duration::ZERO);
    }

    #[test]
    fn faultless_retry_sweep_matches_plain_sweep_bitwise() {
        let items: Vec<f64> = (1..=12).map(|i| 10.0 * i as f64).collect();
        let exec = SweepExecutor::new(77).with_threads(4);
        let plain = exec.run_measured(
            &items,
            || MeasurementRunner::new(Watts(90.0), 0),
            |runner, &steady| {
                runner.measure(Seconds(20.0), Watts(steady), Watts::ZERO, Seconds::ZERO)
            },
        );
        let robust = exec.run_measured_with_retry(
            &items,
            RetryPolicy::default(),
            || MeasurementRunner::faulty(Watts(90.0), FaultPlan::none(), 0),
            |runner, &steady| {
                runner.try_measure(Seconds(20.0), Watts(steady), Watts::ZERO, Seconds::ZERO)
            },
        );
        assert!(robust.is_complete());
        assert_eq!(robust.retried, 0);
        assert_eq!(robust.points, plain);
    }

    #[test]
    fn retry_sweep_is_thread_count_invariant_under_faults() {
        let items: Vec<f64> = (1..=24).map(|i| 10.0 * i as f64).collect();
        let sweep = |threads: usize| {
            SweepExecutor::new(77).with_threads(threads).run_measured_with_retry(
                &items,
                RetryPolicy::attempts(2),
                || MeasurementRunner::faulty(Watts(90.0), FaultPlan::transient(0.25), 0),
                |runner, &steady| {
                    runner.try_measure(Seconds(20.0), Watts(steady), Watts::ZERO, Seconds::ZERO)
                },
            )
        };
        let serial = sweep(1);
        // With a 25% per-read failure rate and only 2 attempts, some
        // configurations retry and some fail — both paths must still be
        // schedule-independent.
        assert!(serial.retried > 0, "fault plan never fired");
        assert_eq!(serial, sweep(2));
        assert_eq!(serial, sweep(8));
    }

    #[test]
    fn exhausted_retries_are_recorded_not_dropped() {
        let items: Vec<f64> = (1..=8).map(|i| 10.0 * i as f64).collect();
        let exec = SweepExecutor::serial(3);
        let robust = exec.run_measured_with_retry(
            &items,
            RetryPolicy::no_retry(),
            || MeasurementRunner::faulty(Watts(90.0), FaultPlan::transient(1.0), 0),
            |runner, &steady| {
                runner.try_measure(Seconds(20.0), Watts(steady), Watts::ZERO, Seconds::ZERO)
            },
        );
        assert_eq!(robust.points.len(), 0);
        assert_eq!(robust.failed_configs(), items.len());
        assert_eq!(robust.total, items.len());
        for (i, f) in robust.failures.iter().enumerate() {
            assert_eq!(f.index, i);
            assert_eq!(f.config, items[i]);
            assert_eq!(f.attempts, 1);
            assert_eq!(f.error, MeasureError::TransientReadFailure);
        }
    }

    #[test]
    fn retries_clear_transient_faults() {
        // A certain-failure plan never clears, but a moderate one must
        // clear more configurations at 4 attempts than at 1.
        let items: Vec<f64> = (1..=16).map(|i| 10.0 * i as f64).collect();
        let sweep = |attempts: usize| {
            SweepExecutor::serial(9).run_measured_with_retry(
                &items,
                RetryPolicy::attempts(attempts),
                || MeasurementRunner::faulty(Watts(90.0), FaultPlan::transient(0.4), 0),
                |runner, &steady| {
                    runner.try_measure(Seconds(20.0), Watts(steady), Watts::ZERO, Seconds::ZERO)
                },
            )
        };
        let once = sweep(1);
        let patient = sweep(4);
        assert!(once.failed_configs() > patient.failed_configs());
        assert!(patient.retried > 0);
    }

    #[test]
    fn sweep_seed_changes_results() {
        let items = [50.0f64, 80.0];
        let run = |seed: u64| {
            SweepExecutor::serial(seed).run_measured(
                &items,
                || MeasurementRunner::new(Watts(90.0), 0),
                |runner, &steady| {
                    runner.measure(Seconds(20.0), Watts(steady), Watts::ZERO, Seconds::ZERO)
                },
            )
        };
        assert_ne!(run(1), run(2));
    }
}
