//! HCLWATTSUP-style energy sessions.
//!
//! HCLWATTSUP determines an application's dynamic energy in three steps:
//! capture the node's idle baseline, integrate total power over the run,
//! then report `E_dynamic = E_total − P_idle × t`. [`EnergySession`]
//! reproduces exactly that workflow against a [`Meter`] — the simulated
//! WattsUp by default, or a [fault-injecting](crate::fault::FaultInjectingMeter)
//! wrapper when the failure paths themselves are under test.
//!
//! Every step that a real rig can fail is fallible here:
//! [`try_with_baseline_window`](EnergySession::try_with_baseline_window),
//! [`try_reseed`](EnergySession::try_reseed) and
//! [`try_measure`](EnergySession::try_measure) return [`MeasureError`]s
//! instead of panicking; the infallible [`with_baseline_window`](EnergySession::with_baseline_window) /
//! [`reseed`](EnergySession::reseed) / [`measure`](EnergySession::measure)
//! wrappers remain for meters that cannot fail under statically-valid
//! windows (the plain simulation).

use crate::error::MeasureError;
use crate::meter::Meter;
use crate::source::PowerSource;
use crate::trace::PowerTrace;
use crate::wattsup::SimulatedWattsUp;
use enprop_units::{Joules, Seconds, Watts};

/// The decomposition of one measured run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReading {
    /// Run length.
    pub duration: Seconds,
    /// Integrated total node energy over the run.
    pub total: Joules,
    /// Static (idle-floor) energy: baseline power × duration.
    pub static_energy: Joules,
    /// Dynamic energy: total − static (clamped at zero: sensor noise can
    /// push a tiny run's total below the baseline).
    pub dynamic: Joules,
}

impl EnergyReading {
    /// Average dynamic power over the run.
    pub fn dynamic_power(&self) -> Watts {
        self.dynamic / self.duration
    }
}

/// No real node draws a megawatt: any sample above this is treated as a
/// wrapped/stale counter leaking through and rejected as
/// [`MeasureError::ImplausibleSample`].
pub const PLAUSIBLE_POWER_CAP: Watts = Watts(1.0e6);

/// A measurement session bound to one meter.
///
/// # Example
/// ```
/// use enprop_power::{EnergySession, SimulatedWattsUp, MeterSpec, ConstantLoad};
/// use enprop_units::{Watts, Seconds};
///
/// let meter = SimulatedWattsUp::new(MeterSpec::default(), Watts(90.0), 42);
/// let mut session = EnergySession::with_baseline_window(meter, Seconds(120.0));
/// let app = ConstantLoad::new(Watts(150.0), Seconds(60.0));
/// let r = session.measure(&app);
/// // Dynamic energy ≈ 150 W × 60 s = 9 kJ (within meter noise).
/// assert!((r.dynamic.value() - 9000.0).abs() < 200.0);
/// ```
#[derive(Debug)]
pub struct EnergySession<M: Meter = SimulatedWattsUp> {
    meter: M,
    /// `None` until a baseline capture succeeds (cold session, or the last
    /// reseed failed mid-capture).
    baseline: Option<Watts>,
    baseline_window: Seconds,
}

impl<M: Meter> EnergySession<M> {
    /// Opens a session, capturing the idle baseline over `window` the way
    /// HCLWATTSUP does before any application run.
    ///
    /// Fails with [`MeasureError::BaselineTooShort`] when `window` cannot
    /// hold two meter samples, and propagates any meter failure during the
    /// capture.
    pub fn try_with_baseline_window(meter: M, window: Seconds) -> Result<Self, MeasureError> {
        let mut s = Self::cold(meter, window)?;
        s.capture_baseline()?;
        Ok(s)
    }

    /// Opens a session with statically-valid inputs and an infallible
    /// meter; panics where [`try_with_baseline_window`](Self::try_with_baseline_window)
    /// would return an error. Kept for the plain-simulation path where a
    /// measurement failure is a programming error, not an operational one.
    pub fn with_baseline_window(meter: M, window: Seconds) -> Self {
        Self::try_with_baseline_window(meter, window)
            .unwrap_or_else(|e| panic!("baseline capture failed: {e}"))
    }

    /// Opens a session *without* capturing a baseline. The session must be
    /// [`try_reseed`](Self::try_reseed)ed (successfully) before measuring —
    /// until then every measurement fails with
    /// [`MeasureError::BaselineNotCaptured`].
    ///
    /// This is the constructor the sweep engine uses for worker-local
    /// rigs: workers reseed before every configuration anyway, and a
    /// fault-injecting meter could fail the eager capture that
    /// [`try_with_baseline_window`](Self::try_with_baseline_window)
    /// performs — a retryable event that belongs inside the per-attempt
    /// retry loop, not at worker construction.
    pub fn cold(meter: M, window: Seconds) -> Result<Self, MeasureError> {
        let period = meter.sample_period();
        if window < period || window.value() <= 0.0 {
            return Err(MeasureError::BaselineTooShort { window, sample_period: period });
        }
        Ok(Self { meter, baseline: None, baseline_window: window })
    }

    /// The captured idle baseline, if any.
    pub fn baseline(&self) -> Option<Watts> {
        self.baseline
    }

    /// The configured baseline-capture window.
    pub fn baseline_window(&self) -> Seconds {
        self.baseline_window
    }

    fn capture_baseline(&mut self) -> Result<(), MeasureError> {
        // Invalidate first: a failed capture must not leave a stale
        // baseline silently in force.
        self.baseline = None;
        let trace = self.meter.record_idle(self.baseline_window)?;
        check_plausible(&trace)?;
        let baseline = trace.mean_power().ok_or(MeasureError::TraceTooShort {
            samples: trace.len(),
        })?;
        self.baseline = Some(baseline);
        Ok(())
    }

    /// Restarts the session from `seed`: the meter's stochastic streams are
    /// reset and the idle baseline is re-captured over the original window,
    /// so the session is bitwise-identical to one freshly opened with a
    /// meter seeded with `seed`. This is the primitive the parallel sweep
    /// engine uses to decouple a configuration's measurement noise from the
    /// worker thread it happens to land on.
    ///
    /// On failure the baseline is left *uncaptured* — a later
    /// [`try_measure`](Self::try_measure) fails with
    /// [`MeasureError::BaselineNotCaptured`] rather than silently using the
    /// previous seed's baseline.
    pub fn try_reseed(&mut self, seed: u64) -> Result<(), MeasureError> {
        self.meter.reseed(seed);
        self.capture_baseline()
    }

    /// Infallible [`try_reseed`](Self::try_reseed) for meters that cannot
    /// fail; panics on a measurement error.
    pub fn reseed(&mut self, seed: u64) {
        self.try_reseed(seed).unwrap_or_else(|e| panic!("reseed failed: {e}"));
    }

    /// Measures one application run and decomposes its energy.
    ///
    /// Fails when no baseline is captured, the meter loses the reading,
    /// dropouts leave fewer than two samples, or a sample is implausible
    /// (wrapped counter artifact).
    pub fn try_measure(&mut self, app: &dyn PowerSource) -> Result<EnergyReading, MeasureError> {
        let baseline = self.baseline.ok_or(MeasureError::BaselineNotCaptured)?;
        let trace = self.meter.record(app)?;
        if trace.len() < 2 {
            return Err(MeasureError::TraceTooShort { samples: trace.len() });
        }
        check_plausible(&trace)?;
        let duration = trace.duration();
        let total = trace.energy();
        let static_energy = baseline * duration;
        let dynamic = Joules((total - static_energy).value().max(0.0));
        Ok(EnergyReading { duration, total, static_energy, dynamic })
    }

    /// Infallible [`try_measure`](Self::try_measure); panics on a
    /// measurement error. Kept for the plain-simulation path.
    pub fn measure(&mut self, app: &dyn PowerSource) -> EnergyReading {
        self.try_measure(app).unwrap_or_else(|e| panic!("measurement failed: {e}"))
    }
}

/// Rejects non-finite or absurd samples (wrapped-counter artifacts).
fn check_plausible(trace: &PowerTrace) -> Result<(), MeasureError> {
    for s in trace.samples() {
        if !s.power.value().is_finite() || s.power > PLAUSIBLE_POWER_CAP {
            return Err(MeasureError::ImplausibleSample { at: s.at, power: s.power });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultInjectingMeter, FaultPlan};
    use crate::source::{CompositeLoad, ConstantLoad, PiecewiseLoad};
    use crate::wattsup::MeterSpec;

    fn quiet_session(idle: f64) -> EnergySession {
        let spec = MeterSpec { noise_sd_w: 0.0, resolution_w: 0.0, ..MeterSpec::default() };
        let meter = SimulatedWattsUp::new(spec, Watts(idle), 5);
        EnergySession::with_baseline_window(meter, Seconds(10.0))
    }

    #[test]
    fn decomposition_identity() {
        let mut s = quiet_session(90.0);
        let app = ConstantLoad::new(Watts(150.0), Seconds(20.0));
        let r = s.measure(&app);
        assert!((r.total - r.static_energy - r.dynamic).abs().value() < 1e-9);
        assert!((r.dynamic.value() - 150.0 * 20.0).abs() < 1e-6, "{:?}", r);
        assert!((r.dynamic_power().value() - 150.0).abs() < 1e-9);
    }

    #[test]
    fn baseline_matches_idle_floor_without_noise() {
        let s = quiet_session(87.5);
        assert!((s.baseline().unwrap().value() - 87.5).abs() < 1e-9);
    }

    #[test]
    fn short_window_is_a_typed_error_not_a_panic() {
        let meter = SimulatedWattsUp::new(MeterSpec::default(), Watts(90.0), 1);
        let err = EnergySession::try_with_baseline_window(meter, Seconds(0.5)).unwrap_err();
        assert!(
            matches!(err, MeasureError::BaselineTooShort { .. }),
            "unexpected error {err:?}"
        );
        let meter = SimulatedWattsUp::new(MeterSpec::default(), Watts(90.0), 1);
        let err = EnergySession::try_with_baseline_window(meter, Seconds(0.0)).unwrap_err();
        assert!(matches!(err, MeasureError::BaselineTooShort { .. }));
    }

    #[test]
    #[should_panic(expected = "baseline capture failed")]
    fn infallible_constructor_panics_on_short_window() {
        let meter = SimulatedWattsUp::new(MeterSpec::default(), Watts(90.0), 1);
        EnergySession::with_baseline_window(meter, Seconds(0.5));
    }

    #[test]
    fn cold_session_requires_reseed_before_measuring() {
        let meter = SimulatedWattsUp::new(MeterSpec::default(), Watts(90.0), 1);
        let mut s = EnergySession::cold(meter, Seconds(120.0)).unwrap();
        assert_eq!(s.baseline(), None);
        let app = ConstantLoad::new(Watts(150.0), Seconds(10.0));
        assert_eq!(s.try_measure(&app), Err(MeasureError::BaselineNotCaptured));
        s.try_reseed(17).unwrap();
        assert!(s.baseline().is_some());
        assert!(s.try_measure(&app).is_ok());
    }

    #[test]
    fn cold_then_reseed_equals_fresh_session() {
        let app = ConstantLoad::new(Watts(150.0), Seconds(40.0));
        let meter = SimulatedWattsUp::new(MeterSpec::default(), Watts(90.0), 3);
        let mut cold = EnergySession::cold(meter, Seconds(120.0)).unwrap();
        cold.try_reseed(17).unwrap();
        let mut fresh = {
            let meter = SimulatedWattsUp::new(MeterSpec::default(), Watts(90.0), 17);
            EnergySession::with_baseline_window(meter, Seconds(120.0))
        };
        assert_eq!(cold.baseline(), fresh.baseline());
        assert_eq!(cold.measure(&app), fresh.measure(&app));
    }

    #[test]
    fn failed_reseed_invalidates_the_baseline() {
        let inner = SimulatedWattsUp::new(MeterSpec::default(), Watts(90.0), 1);
        let meter = FaultInjectingMeter::new(inner, FaultPlan::transient(1.0), 1);
        let mut s = EnergySession::cold(meter, Seconds(120.0)).unwrap();
        assert_eq!(s.try_reseed(5), Err(MeasureError::TransientReadFailure));
        assert_eq!(s.baseline(), None);
        let app = ConstantLoad::new(Watts(150.0), Seconds(10.0));
        assert_eq!(s.try_measure(&app), Err(MeasureError::BaselineNotCaptured));
    }

    #[test]
    fn implausible_sample_rejected() {
        let inner = SimulatedWattsUp::new(MeterSpec::default(), Watts(90.0), 1);
        let meter = FaultInjectingMeter::new(inner, FaultPlan::none().with_glitches(1.0), 1);
        let mut s = EnergySession::cold(meter, Seconds(120.0)).unwrap();
        // The baseline capture itself sees the glitch.
        let err = s.try_reseed(2).unwrap_err();
        assert!(matches!(err, MeasureError::ImplausibleSample { .. }), "{err:?}");
    }

    #[test]
    fn dynamic_clamped_non_negative() {
        // Miscalibrated meter underreads the run: dynamic would go negative.
        let spec =
            MeterSpec { noise_sd_w: 0.0, resolution_w: 0.0, gain: 1.0, ..MeterSpec::default() };
        let meter = SimulatedWattsUp::new(spec, Watts(100.0), 5);
        let mut s = EnergySession::with_baseline_window(meter, Seconds(10.0));
        struct Nothing;
        impl PowerSource for Nothing {
            fn power_at(&self, _t: Seconds) -> Watts {
                Watts::ZERO
            }
            fn duration(&self) -> Seconds {
                Seconds(5.0)
            }
        }
        let r = s.measure(&Nothing);
        assert!(r.dynamic.value() >= 0.0);
        assert!(r.dynamic.value() < 1.0);
    }

    #[test]
    fn warmup_component_visible_in_dynamic_energy() {
        // Compute at 150 W for 10 s plus a 58 W component for the first 2 s —
        // the paper's Fig. 6 mechanism.
        let mut s = quiet_session(90.0);
        let compute = ConstantLoad::new(Watts(150.0), Seconds(10.0));
        let warm = PiecewiseLoad::from_segments(vec![(Seconds(2.0), Watts(58.0))]);
        let app = CompositeLoad::new(compute, warm);
        let r = s.measure(&app);
        let expected = 150.0 * 10.0 + 58.0 * 2.0;
        assert!((r.dynamic.value() - expected).abs() < 60.0, "{:?}", r);
    }

    #[test]
    fn reseeded_session_equals_fresh_session() {
        let app = ConstantLoad::new(Watts(150.0), Seconds(40.0));
        let mut used = {
            let meter = SimulatedWattsUp::new(MeterSpec::default(), Watts(90.0), 3);
            EnergySession::with_baseline_window(meter, Seconds(120.0))
        };
        used.measure(&app); // advance the noise stream
        used.reseed(17);
        let mut fresh = {
            let meter = SimulatedWattsUp::new(MeterSpec::default(), Watts(90.0), 17);
            EnergySession::with_baseline_window(meter, Seconds(120.0))
        };
        assert_eq!(used.baseline(), fresh.baseline());
        assert_eq!(used.measure(&app), fresh.measure(&app));
    }

    #[test]
    fn noisy_session_close_to_truth() {
        let meter = SimulatedWattsUp::new(MeterSpec::default(), Watts(90.0), 11);
        let mut s = EnergySession::with_baseline_window(meter, Seconds(300.0));
        let app = ConstantLoad::new(Watts(150.0), Seconds(100.0));
        let r = s.measure(&app);
        assert!((r.dynamic.value() - 15000.0).abs() / 15000.0 < 0.02, "{:?}", r);
    }
}
