//! Dynamic voltage and frequency scaling (DVFS).
//!
//! DVFS is "the dominant decision variable" of the system-level
//! energy/performance methods the paper surveys (§II-A), and one of the
//! hardware mechanisms (§III) that make a multicore CPU's power a complex
//! function of utilization. This module models P-states with the
//! `P ∝ f·V²` scaling law and the classic cpufreq governors, and plugs
//! into [`CpuSimulator`](crate::sim::CpuSimulator) via
//! [`crate::sim::CpuSimulator::run_dgemm_at`].

use enprop_units::Hertz;
use serde::{Deserialize, Serialize};

/// One performance state: an operating frequency and its required voltage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PState {
    /// Core frequency.
    pub frequency: Hertz,
    /// Supply voltage, volts.
    pub voltage: f64,
}

impl PState {
    /// Dynamic-power scale of this state relative to a reference state:
    /// `f·V² / f_ref·V_ref²` (the CMOS switching-power law).
    pub fn power_scale(&self, reference: &PState) -> f64 {
        (self.frequency.value() * self.voltage * self.voltage)
            / (reference.frequency.value() * reference.voltage * reference.voltage)
    }

    /// Compute-throughput scale relative to a reference state (linear in
    /// frequency for core-bound work).
    pub fn perf_scale(&self, reference: &PState) -> f64 {
        self.frequency.ratio(reference.frequency)
    }
}

/// An ordered table of P-states (ascending frequency).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DvfsTable {
    states: Vec<PState>,
}

impl DvfsTable {
    /// Builds a table; states are sorted by frequency. Panics on an empty
    /// list or non-positive values.
    pub fn new(mut states: Vec<PState>) -> Self {
        assert!(!states.is_empty(), "need at least one P-state");
        assert!(
            states.iter().all(|s| s.frequency.value() > 0.0 && s.voltage > 0.0),
            "frequencies and voltages must be positive"
        );
        states.sort_by(|a, b| a.frequency.partial_cmp(&b.frequency).expect("NaN frequency"));
        Self { states }
    }

    /// The Haswell E5-2670 v3 ladder: 1.2–2.3 GHz in 100 MHz steps (the
    /// 1200.402 MHz of Table I is this ladder's floor) plus the 3.1 GHz
    /// single-core turbo, with a linear voltage ramp 0.75–1.05 V.
    pub fn haswell() -> Self {
        let mut states = Vec::new();
        for step in 0..=11 {
            let f = 1.2e9 + step as f64 * 0.1e9;
            let voltage = 0.75 + 0.3 * (f - 1.2e9) / (2.3e9 - 1.2e9);
            states.push(PState { frequency: Hertz(f), voltage });
        }
        states.push(PState { frequency: Hertz(3.1e9), voltage: 1.15 });
        Self::new(states)
    }

    /// All states, ascending.
    pub fn states(&self) -> &[PState] {
        &self.states
    }

    /// The lowest-frequency state.
    pub fn min_state(&self) -> &PState {
        self.states.first().expect("non-empty table")
    }

    /// The highest-frequency state.
    pub fn max_state(&self) -> &PState {
        self.states.last().expect("non-empty table")
    }

    /// The nominal (max non-turbo) state: the highest state at most
    /// `nominal_hz`; falls back to the floor.
    pub fn nominal(&self, nominal_hz: Hertz) -> &PState {
        self.states
            .iter()
            .rev()
            .find(|s| s.frequency <= nominal_hz)
            .unwrap_or_else(|| self.min_state())
    }

    /// The slowest state with frequency ≥ `target`; the max state if none.
    pub fn at_least(&self, target: Hertz) -> &PState {
        self.states
            .iter()
            .find(|s| s.frequency >= target)
            .unwrap_or_else(|| self.max_state())
    }

    /// Index of a state in the ladder (by frequency equality).
    fn index_of(&self, state: &PState) -> usize {
        self.states
            .iter()
            .position(|s| s.frequency == state.frequency)
            .expect("state not from this table")
    }

    /// One step up the ladder (saturating).
    pub fn step_up(&self, state: &PState) -> &PState {
        let i = self.index_of(state);
        &self.states[(i + 1).min(self.states.len() - 1)]
    }

    /// One step down the ladder (saturating).
    pub fn step_down(&self, state: &PState) -> &PState {
        let i = self.index_of(state);
        &self.states[i.saturating_sub(1)]
    }
}

/// A cpufreq-style governor: a policy mapping observed utilization to the
/// next P-state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Governor {
    /// Always the maximum frequency.
    Performance,
    /// Always the minimum frequency.
    Powersave,
    /// A fixed, user-chosen frequency (the slowest state at least this
    /// fast).
    Userspace(Hertz),
    /// The classic ondemand policy: jump to max when utilization exceeds
    /// `up_threshold`, otherwise step down one state.
    Ondemand {
        /// Utilization fraction above which the governor jumps to max.
        up_threshold: f64,
    },
}

/// A stateful governor simulation over a utilization trace.
#[derive(Debug, Clone)]
pub struct GovernorSim<'t> {
    table: &'t DvfsTable,
    governor: Governor,
    current: PState,
}

impl<'t> GovernorSim<'t> {
    /// Starts the simulation at the table's floor state.
    pub fn new(table: &'t DvfsTable, governor: Governor) -> Self {
        Self { table, governor, current: *table.min_state() }
    }

    /// The current P-state.
    pub fn current(&self) -> PState {
        self.current
    }

    /// Feeds one utilization observation and returns the chosen state.
    pub fn step(&mut self, utilization: f64) -> PState {
        self.current = match self.governor {
            Governor::Performance => *self.table.max_state(),
            Governor::Powersave => *self.table.min_state(),
            Governor::Userspace(f) => *self.table.at_least(f),
            Governor::Ondemand { up_threshold } => {
                if utilization > up_threshold {
                    *self.table.max_state()
                } else {
                    *self.table.step_down(&self.current)
                }
            }
        };
        self.current
    }

    /// Runs the governor over a whole trace, returning the visited states.
    pub fn run(&mut self, utilizations: &[f64]) -> Vec<PState> {
        utilizations.iter().map(|&u| self.step(u)).collect()
    }
}

/// Energy/time accounting of a governor over a phased utilization trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Total wall time of the trace.
    pub time: enprop_units::Seconds,
    /// Dynamic energy consumed over the trace.
    pub dynamic_energy: enprop_units::Joules,
    /// The P-state chosen at each tick.
    pub states: Vec<PState>,
}

/// Accounts a governor over a utilization trace of fixed-length ticks.
///
/// Each tick draws `ref_power · power_scale(state) · utilization` for
/// `tick` seconds, where `ref_power` is the node's dynamic power at full
/// utilization in the `reference` state — the simple EP per-state model
/// with the `f·V²` scaling law on top.
pub fn account_trace(
    table: &DvfsTable,
    governor: Governor,
    utilizations: &[f64],
    tick: enprop_units::Seconds,
    ref_power: enprop_units::Watts,
    reference: &PState,
) -> TraceSummary {
    assert!(tick.value() > 0.0, "tick must be positive");
    assert!(ref_power.value() >= 0.0, "reference power must be non-negative");
    let mut sim = GovernorSim::new(table, governor);
    let mut energy = 0.0;
    let mut states = Vec::with_capacity(utilizations.len());
    for &u in utilizations {
        assert!((0.0..=1.0).contains(&u), "utilization must be in [0, 1]");
        let state = sim.step(u);
        energy += ref_power.value() * state.power_scale(reference) * u * tick.value();
        states.push(state);
    }
    TraceSummary {
        time: tick * utilizations.len() as f64,
        dynamic_energy: enprop_units::Joules(energy),
        states,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haswell_ladder_shape() {
        let t = DvfsTable::haswell();
        assert_eq!(t.states().len(), 13);
        assert!((t.min_state().frequency.value() - 1.2e9).abs() < 1.0);
        assert!((t.max_state().frequency.value() - 3.1e9).abs() < 1.0);
        // Ascending frequencies and voltages.
        for w in t.states().windows(2) {
            assert!(w[1].frequency > w[0].frequency);
            assert!(w[1].voltage >= w[0].voltage);
        }
    }

    #[test]
    fn cube_law_power_scaling() {
        let t = DvfsTable::haswell();
        let lo = t.min_state();
        let hi = t.nominal(Hertz(2.3e9));
        // f ratio 2.3/1.2 ≈ 1.92; V ratio 1.05/0.75 = 1.4 → power ratio
        // ≈ 1.92 × 1.96 ≈ 3.76.
        let scale = hi.power_scale(lo);
        assert!((3.4..4.1).contains(&scale), "{scale}");
        // Perf only scales with f.
        assert!((hi.perf_scale(lo) - 2.3 / 1.2).abs() < 1e-9);
        // Self-scale is 1.
        assert!((lo.power_scale(lo) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nominal_and_at_least_lookup() {
        let t = DvfsTable::haswell();
        assert!((t.nominal(Hertz(2.3e9)).frequency.value() - 2.3e9).abs() < 1.0);
        // 2.35 GHz nominal still picks 2.3 (turbo excluded).
        assert!((t.nominal(Hertz(2.35e9)).frequency.value() - 2.3e9).abs() < 1.0);
        assert!((t.at_least(Hertz(1.25e9)).frequency.value() - 1.3e9).abs() < 1.0);
        // Beyond the table → max.
        assert!((t.at_least(Hertz(9.9e9)).frequency.value() - 3.1e9).abs() < 1.0);
    }

    #[test]
    fn ladder_stepping_saturates() {
        let t = DvfsTable::haswell();
        let top = *t.max_state();
        assert_eq!(*t.step_up(&top), top);
        let bottom = *t.min_state();
        assert_eq!(*t.step_down(&bottom), bottom);
        assert!(t.step_up(&bottom).frequency > bottom.frequency);
    }

    #[test]
    fn performance_and_powersave_governors() {
        let t = DvfsTable::haswell();
        let mut perf = GovernorSim::new(&t, Governor::Performance);
        assert_eq!(perf.step(0.1), *t.max_state());
        let mut save = GovernorSim::new(&t, Governor::Powersave);
        assert_eq!(save.step(0.99), *t.min_state());
    }

    #[test]
    fn ondemand_jumps_up_and_steps_down() {
        let t = DvfsTable::haswell();
        let mut g = GovernorSim::new(&t, Governor::Ondemand { up_threshold: 0.8 });
        // A burst jumps straight to max.
        assert_eq!(g.step(0.95), *t.max_state());
        // Idle steps walk down one state at a time.
        let after_one = g.step(0.1);
        assert!(after_one.frequency < t.max_state().frequency);
        let after_two = g.step(0.1);
        assert!(after_two.frequency < after_one.frequency);
        // Eventually reaches and stays at the floor.
        for _ in 0..20 {
            g.step(0.1);
        }
        assert_eq!(g.current(), *t.min_state());
    }

    #[test]
    fn governor_trace() {
        let t = DvfsTable::haswell();
        let mut g = GovernorSim::new(&t, Governor::Ondemand { up_threshold: 0.5 });
        let states = g.run(&[0.9, 0.9, 0.2, 0.2, 0.9]);
        assert_eq!(states.len(), 5);
        assert_eq!(states[0], *t.max_state());
        assert!(states[3].frequency < states[1].frequency);
        assert_eq!(states[4], *t.max_state());
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_table_rejected() {
        DvfsTable::new(vec![]);
    }

    #[test]
    fn trace_accounting_orders_governors() {
        use enprop_units::{Hertz, Seconds, Watts};
        let t = DvfsTable::haswell();
        let nominal = *t.nominal(Hertz(2.3e9));
        // Mostly-idle trace with a burst in the middle.
        let load: Vec<f64> = (0..30)
            .map(|i| if (10..13).contains(&i) { 0.95 } else { 0.1 })
            .collect();
        let run = |gov| account_trace(&t, gov, &load, Seconds(1.0), Watts(80.0), &nominal);
        let perf = run(Governor::Performance);
        let save = run(Governor::Powersave);
        let ond = run(Governor::Ondemand { up_threshold: 0.8 });
        // At this accounting level (same utilization trace), energy orders
        // strictly by the voltage/frequency the governor chooses.
        assert!(save.dynamic_energy < ond.dynamic_energy);
        assert!(ond.dynamic_energy < perf.dynamic_energy);
        // Ondemand rode the burst at max frequency…
        assert_eq!(ond.states[10], *t.max_state());
        // …and walked back down afterwards.
        assert!(ond.states[20].frequency < t.max_state().frequency);
        assert_eq!(perf.time, Seconds(30.0));
    }

    #[test]
    fn trace_accounting_scales_with_utilization() {
        use enprop_units::{Hertz, Seconds, Watts};
        let t = DvfsTable::haswell();
        let nominal = *t.nominal(Hertz(2.3e9));
        let busy = account_trace(
            &t,
            Governor::Performance,
            &[1.0; 10],
            Seconds(1.0),
            Watts(50.0),
            &nominal,
        );
        let half = account_trace(
            &t,
            Governor::Performance,
            &[0.5; 10],
            Seconds(1.0),
            Watts(50.0),
            &nominal,
        );
        assert!((busy.dynamic_energy.value() - 2.0 * half.dynamic_energy.value()).abs() < 1e-9);
    }
}
