//! Drivers: sanitize one kernel launch, or sweep every shipped
//! configuration, into machine-readable reports.
//!
//! Each driver validates the launch geometry first ([`crate::prelaunch`]);
//! only a launchable configuration is executed, under a
//! [`LaunchMonitor`] via the emulator's monitored interpreter. Buffers
//! are filled deterministically (SplitMix64), blocks run serially in
//! row-major order, and every diagnostic names buffers by their
//! registered name — so a report is bit-for-bit reproducible across runs
//! and machines.

use crate::monitor::{BufferTable, LaunchMonitor};
use crate::prelaunch;
use crate::report::Finding;
use enprop_gpusim::emulator::{
    run_grid_monitored, BlockKernel, Dim2, EmuDgemm, EmuRowFft, EventCounters, GlobalMem,
};
use enprop_gpusim::model::max_group;
use enprop_gpusim::{GpuArch, TiledDgemmConfig};
use serde::Serialize;

/// The sanitized outcome of one kernel launch (or of its rejected
/// pre-launch validation, in which case `blocks == 0`).
#[derive(Debug, Clone, Serialize)]
pub struct KernelReport {
    /// Human-readable launch label, e.g. `dgemm N=64 BS=16 G=2 R=1`.
    pub kernel: String,
    /// Thread blocks executed (0 when pre-launch validation rejected).
    pub blocks: usize,
    /// Every finding, in deterministic discovery order.
    pub findings: Vec<Finding>,
    /// Findings dropped past the per-launch reporting cap.
    pub suppressed: usize,
}

impl KernelReport {
    /// No findings, none suppressed.
    pub fn clean(&self) -> bool {
        self.findings.is_empty() && self.suppressed == 0
    }
}

/// A full sweep: every configuration's [`KernelReport`] on one
/// architecture.
#[derive(Debug, Clone, Serialize)]
pub struct SanitizeReport {
    /// The architecture the geometry was validated against.
    pub arch: String,
    /// One report per launch, in sweep order.
    pub kernels: Vec<KernelReport>,
}

impl SanitizeReport {
    /// Total findings across all launches, including suppressed ones.
    pub fn total_findings(&self) -> usize {
        self.kernels.iter().map(|k| k.findings.len() + k.suppressed).sum()
    }

    /// Every launch clean?
    pub fn clean(&self) -> bool {
        self.kernels.iter().all(KernelReport::clean)
    }
}

/// Deterministic SplitMix64 fill in `[-1, 1)`.
pub(crate) fn fill(len: usize, seed: u64) -> Vec<f64> {
    let mut state = seed;
    (0..len)
        .map(|_| {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        })
        .collect()
}

/// Runs an arbitrary [`BlockKernel`] under a fresh [`LaunchMonitor`] and
/// packages the outcome. The generic entry point the shipped-kernel
/// drivers and the seeded fixtures share.
pub fn sanitize_kernel<K: BlockKernel>(
    label: &str,
    grid: Dim2,
    kernel: &K,
    table: BufferTable,
) -> KernelReport {
    let monitor = LaunchMonitor::new(table, kernel.shared_len());
    let events = EventCounters::new();
    run_grid_monitored(
        grid,
        kernel,
        &events,
        |_, _| {
            monitor.begin_block();
            monitor.sink()
        },
        |bx, by, _sink, exit| monitor.end_block(bx, by, &exit),
    );
    let out = monitor.finish();
    KernelReport {
        kernel: label.to_string(),
        blocks: grid.count(),
        findings: out.findings,
        suppressed: out.suppressed,
    }
}

/// Sanitizes one tiled-DGEMM launch: pre-launch geometry validation, then
/// (if launchable) a fully monitored execution over deterministic inputs.
pub fn sanitize_dgemm(cfg: TiledDgemmConfig, arch: &GpuArch) -> KernelReport {
    let label = format!("dgemm N={} BS={} G={} R={}", cfg.n, cfg.bs, cfg.g, cfg.r);
    let findings = prelaunch::check_dgemm(&cfg, arch);
    if !findings.is_empty() {
        return KernelReport { kernel: label, blocks: 0, findings, suppressed: 0 };
    }

    let n = cfg.n;
    let a = GlobalMem::from_slice(&fill(n * n, 0xA11CE));
    let b = GlobalMem::from_slice(&fill(n * n, 0xB0B5));
    let c = GlobalMem::from_slice(&fill(n * n, 0xCAFE));
    let mut table = BufferTable::new();
    table.register(a.id(), "A", n * n);
    table.register(b.id(), "B", n * n);
    table.register(c.id(), "C", n * n);

    let monitor = LaunchMonitor::new(table, 2 * cfg.bs * cfg.bs);
    EmuDgemm::new(cfg).run_monitored(
        &a,
        &b,
        &c,
        |_, _| {
            monitor.begin_block();
            monitor.sink()
        },
        |bx, by, _sink, exit| monitor.end_block(bx, by, &exit),
    );
    let out = monitor.finish();
    let tiles = n / cfg.bs;
    KernelReport {
        kernel: label,
        blocks: tiles * tiles,
        findings: out.findings,
        suppressed: out.suppressed,
    }
}

/// Sanitizes one row-FFT launch, analogously to [`sanitize_dgemm`].
pub fn sanitize_fft(n: usize, rows: usize, arch: &GpuArch) -> KernelReport {
    let label = format!("fft n={n} rows={rows}");
    let findings = prelaunch::check_fft(n, rows, arch);
    if !findings.is_empty() {
        return KernelReport { kernel: label, blocks: 0, findings, suppressed: 0 };
    }

    let data = GlobalMem::from_slice(&fill(2 * rows * n, 0xF0F7));
    let mut table = BufferTable::new();
    table.register(data.id(), "signal", 2 * rows * n);

    let monitor = LaunchMonitor::new(table, 2 * n);
    EmuRowFft::new(n, rows).run_monitored(
        &data,
        |_, _| {
            monitor.begin_block();
            monitor.sink()
        },
        |bx, by, _sink, exit| monitor.end_block(bx, by, &exit),
    );
    let out = monitor.finish();
    KernelReport { kernel: label, blocks: rows, findings: out.findings, suppressed: out.suppressed }
}

/// The DGEMM configurations a sweep sanitizes: every valid `BS` for each
/// `N`, crossed with group/run shapes that exercise both retire paths
/// (the separator-barrier path via `R=2` and the multi-product group path
/// via `G=2`). `all` widens the sweep to `N=128` and the maximal group.
pub fn dgemm_grid(arch: &GpuArch, all: bool) -> Vec<TiledDgemmConfig> {
    let ns: &[usize] = if all { &[32, 64, 128] } else { &[32, 64] };
    let mut out = Vec::new();
    for &n in ns {
        for bs in 1..=32usize {
            if !n.is_multiple_of(bs) {
                continue;
            }
            let mg = max_group(bs);
            let mut shapes = vec![(1usize, 1usize), (1, 2)];
            if mg >= 2 {
                shapes.push((2, 1));
            }
            if all && mg > 2 {
                shapes.push((mg, 1));
            }
            for (g, r) in shapes {
                let cfg = TiledDgemmConfig { n, bs, g, r };
                if cfg.is_valid(arch) {
                    out.push(cfg);
                }
            }
        }
    }
    out
}

/// The `(n, rows)` FFT configurations a sweep sanitizes.
pub fn fft_grid(all: bool) -> Vec<(usize, usize)> {
    let mut out = vec![(8, 3), (32, 3), (64, 2)];
    if all {
        out.push((128, 2));
        out.push((256, 1));
    }
    out
}

/// Sanitizes every shipped kernel configuration on `arch`.
pub fn sanitize_all(arch: &GpuArch, all: bool) -> SanitizeReport {
    let mut kernels = Vec::new();
    for cfg in dgemm_grid(arch, all) {
        kernels.push(sanitize_dgemm(cfg, arch));
    }
    for (n, rows) in fft_grid(all) {
        kernels.push(sanitize_fft(n, rows, arch));
    }
    SanitizeReport { arch: arch.name.clone(), kernels }
}
