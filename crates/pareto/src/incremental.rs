//! Online Pareto-front maintenance and budgeted front search.
//!
//! The paper motivates local fronts by noting that "determining a global
//! Pareto front by exhaustively obtaining the data points for all the
//! application configurations can be expensive and may not be feasible in
//! dynamic environments with time constraints". [`FrontTracker`] maintains
//! a front as points stream in (one measured configuration at a time);
//! [`adaptive_front`] turns that into a stopping rule — evaluate
//! configurations until `patience` consecutive evaluations fail to improve
//! the front.

use crate::front::BiPoint;

/// An online (minimizing) 2-D Pareto front.
///
/// Points are inserted one at a time; the tracker keeps the current
/// non-dominated set sorted by increasing time, tagged with caller ids.
///
/// Because mutually non-dominated 2-D points sorted by increasing time
/// have strictly decreasing energy, [`insert`](FrontTracker::insert) is
/// `O(log n + evicted)` per offered point instead of the two full scans a
/// naive dominance check costs — this is the inner loop of every streaming
/// Pareto merge in the figure generators.
#[derive(Debug, Clone, Default)]
pub struct FrontTracker {
    /// Front entries `(point, id)`, sorted by time asc / energy desc.
    /// Invariant: times strictly increase, energies strictly decrease (a
    /// time tie would make one member dominate or duplicate the other).
    entries: Vec<(BiPoint, usize)>,
}

impl FrontTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Offers a point; returns `true` when the front changed (the point
    /// entered, possibly evicting dominated members). Duplicates of
    /// existing front points do not change the front.
    ///
    /// `O(log n + evicted)`: one binary search locates the insertion slot;
    /// the sorted invariant reduces dominance/duplicate detection to the
    /// slot's two neighbours, and the members the new point dominates form
    /// a contiguous run starting at the slot.
    pub fn insert(&mut self, point: BiPoint, id: usize) -> bool {
        // First member at least as slow as the new point.
        let pos = self.entries.partition_point(|(p, _)| p.time < point.time);
        // Everything before `pos` is strictly faster; by the invariant the
        // member at `pos - 1` has the lowest energy among them, so it alone
        // decides whether a faster member dominates the new point.
        if pos > 0 && self.entries[pos - 1].0.energy <= point.energy {
            return false;
        }
        // A member tied on time either duplicates the new point or decides
        // dominance by energy; slower members can never dominate it.
        if let Some(&(next, _)) = self.entries.get(pos) {
            if next.time == point.time && next.energy <= point.energy {
                return false;
            }
        }
        // Members the new point dominates: at least as slow AND at least as
        // hungry — with energies decreasing, a contiguous run from `pos`.
        let evicted =
            self.entries[pos..].partition_point(|(p, _)| p.energy >= point.energy);
        self.entries.splice(pos..pos + evicted, std::iter::once((point, id)));
        true
    }

    /// The current front, sorted by increasing time.
    pub fn front(&self) -> &[(BiPoint, usize)] {
        &self.entries
    }

    /// Number of front points.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no point has entered yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Outcome of a budgeted front search.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// The front found, as `(point, index into the candidate order)`.
    pub front: Vec<(BiPoint, usize)>,
    /// Candidates actually evaluated.
    pub evaluations: usize,
    /// Whether the search stopped early (patience exhausted) rather than
    /// exhausting the candidates.
    pub stopped_early: bool,
}

/// Evaluates candidates in order until `patience` consecutive evaluations
/// leave the front unchanged (or candidates run out). The oracle maps a
/// candidate index to its measured objectives — typically one full metered
/// application run, which is exactly the expensive step worth saving.
pub fn adaptive_front(
    candidates: usize,
    mut oracle: impl FnMut(usize) -> BiPoint,
    patience: usize,
) -> SearchResult {
    assert!(patience >= 1, "patience must be at least 1");
    let mut tracker = FrontTracker::new();
    let mut stale = 0usize;
    let mut evaluations = 0usize;
    for i in 0..candidates {
        let p = oracle(i);
        evaluations += 1;
        if tracker.insert(p, i) {
            stale = 0;
        } else {
            stale += 1;
            if stale >= patience {
                return SearchResult {
                    front: tracker.front().to_vec(),
                    evaluations,
                    stopped_early: true,
                };
            }
        }
    }
    SearchResult { front: tracker.front().to_vec(), evaluations, stopped_early: false }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::front::pareto_front;

    fn pts(v: &[(f64, f64)]) -> Vec<BiPoint> {
        v.iter().map(|&(t, e)| BiPoint::new(t, e)).collect()
    }

    #[test]
    fn tracker_matches_batch_front() {
        let cloud = pts(&[
            (3.0, 3.0),
            (1.0, 5.0),
            (5.0, 1.0),
            (2.0, 4.0),
            (4.0, 4.0),
            (2.0, 4.0), // duplicate
        ]);
        let mut tracker = FrontTracker::new();
        for (i, &p) in cloud.iter().enumerate() {
            tracker.insert(p, i);
        }
        let batch: Vec<BiPoint> =
            pareto_front(&cloud).into_iter().map(|i| cloud[i]).collect();
        let online: Vec<BiPoint> = tracker.front().iter().map(|(p, _)| *p).collect();
        assert_eq!(online, batch);
    }

    #[test]
    fn insert_reports_changes() {
        let mut t = FrontTracker::new();
        assert!(t.is_empty());
        assert!(t.insert(BiPoint::new(2.0, 2.0), 0));
        assert!(!t.insert(BiPoint::new(3.0, 3.0), 1)); // dominated
        assert!(!t.insert(BiPoint::new(2.0, 2.0), 2)); // duplicate
        assert!(t.insert(BiPoint::new(1.0, 4.0), 3)); // new trade-off
        assert!(t.insert(BiPoint::new(0.5, 0.5), 4)); // dominates everything
        assert_eq!(t.len(), 1);
        assert_eq!(t.front()[0].1, 4);
    }

    proptest::proptest! {
        /// The binary-search insert must agree with the batch front on
        /// arbitrary clouds (including duplicates and time ties).
        #[test]
        fn tracker_matches_batch_front_randomized(
            cloud in proptest::prelude::prop::collection::vec((0..20u32, 0..20u32), 1..80)
        ) {
            let cloud: Vec<BiPoint> = cloud
                .into_iter()
                .map(|(t, e)| BiPoint::new(t as f64, e as f64))
                .collect();
            let mut tracker = FrontTracker::new();
            for (i, &p) in cloud.iter().enumerate() {
                tracker.insert(p, i);
            }
            let batch: Vec<BiPoint> =
                pareto_front(&cloud).into_iter().map(|i| cloud[i]).collect();
            let online: Vec<BiPoint> =
                tracker.front().iter().map(|(p, _)| *p).collect();
            proptest::prop_assert_eq!(online, batch);
        }
    }

    #[test]
    fn insert_evicts_contiguous_dominated_run() {
        let mut t = FrontTracker::new();
        for (i, &(x, y)) in
            [(1.0, 9.0), (2.0, 7.0), (3.0, 5.0), (4.0, 3.0), (5.0, 1.0)].iter().enumerate()
        {
            assert!(t.insert(BiPoint::new(x, y), i));
        }
        // Dominates the (2,7), (3,5), (4,3) run but not the endpoints.
        assert!(t.insert(BiPoint::new(1.5, 2.0), 9));
        let ids: Vec<usize> = t.front().iter().map(|(_, id)| *id).collect();
        assert_eq!(ids, vec![0, 9, 4]);
    }

    #[test]
    fn adaptive_search_stops_early_on_stale_tail() {
        // The front is settled by the first three candidates; the rest are
        // dominated. With patience 5 the search stops long before 100.
        let cloud: Vec<BiPoint> = (0..100)
            .map(|i| match i {
                0 => BiPoint::new(1.0, 5.0),
                1 => BiPoint::new(2.0, 3.0),
                2 => BiPoint::new(4.0, 1.0),
                _ => BiPoint::new(5.0 + i as f64, 6.0),
            })
            .collect();
        let r = adaptive_front(cloud.len(), |i| cloud[i], 5);
        assert!(r.stopped_early);
        assert_eq!(r.evaluations, 8); // 3 improving + 5 stale
        assert_eq!(r.front.len(), 3);
    }

    #[test]
    fn exhaustive_when_patience_never_met() {
        // Strictly improving stream: every candidate enters the front.
        let r = adaptive_front(20, |i| BiPoint::new(i as f64, 100.0 - i as f64), 3);
        assert!(!r.stopped_early);
        assert_eq!(r.evaluations, 20);
        assert_eq!(r.front.len(), 20);
    }

    #[test]
    fn search_front_is_subset_of_true_front() {
        // Whatever the stopping point, everything reported is mutually
        // non-dominated.
        let cloud: Vec<BiPoint> = (0..60)
            .map(|i| {
                let x = (i as f64 * 0.37).sin() * 5.0 + 6.0;
                let y = (i as f64 * 0.53).cos() * 5.0 + 6.0;
                BiPoint::new(x, y)
            })
            .collect();
        let r = adaptive_front(cloud.len(), |i| cloud[i], 4);
        for (a, _) in &r.front {
            for (b, _) in &r.front {
                assert!(a == b || !a.dominates(b));
            }
        }
    }
}
