//! §III Eqs. 1–3: the two-core nonproportionality theorem, evaluated on a
//! grid and verified.

use enprop_ep::{SimpleEpCore, TwoCoreAnalysis};
use enprop_units::Utilization;
use serde::{Deserialize, Serialize};

/// One (U, ΔU) row of the theorem table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TheoryRow {
    /// Base utilization U.
    pub u: f64,
    /// Perturbation ΔU.
    pub delta: f64,
    /// Eq. 1: balanced energy `2ab`.
    pub e1: f64,
    /// Eq. 2: one core raised.
    pub e2: f64,
    /// Eq. 3: one raised, one lowered (same average).
    pub e3: f64,
    /// Whether `E₃ > E₂ > E₁` holds at this point.
    pub holds: bool,
}

/// The theorem evaluation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Theory {
    /// The simple-EP constants used (`a`, `b`).
    pub a: f64,
    /// Time constant.
    pub b: f64,
    /// The grid rows.
    pub rows: Vec<TheoryRow>,
    /// Whether the ordering held at every grid point.
    pub all_hold: bool,
}

/// Evaluates the theorem over a (U, ΔU) grid with a = 3 W, b = 2 s.
pub fn generate() -> Theory {
    let (a, b) = (3.0, 2.0);
    let analysis = TwoCoreAnalysis::new(SimpleEpCore::new(a, b));
    let mut rows = Vec::new();
    for iu in 1..=9 {
        let u = iu as f64 / 10.0;
        for id in 1..=9 {
            let delta = id as f64 / 20.0;
            if delta >= u || u + delta > 1.0 {
                continue;
            }
            let (e1, e2, e3) = analysis.theorem_triple(Utilization::new(u), delta);
            rows.push(TheoryRow {
                u,
                delta,
                e1: e1.value(),
                e2: e2.value(),
                e3: e3.value(),
                holds: e3 > e2 && e2 > e1,
            });
        }
    }
    let all_hold = rows.iter().all(|r| r.holds);
    Theory { a, b, rows, all_hold }
}

/// Renders the theorem table.
pub fn render() -> String {
    let t = generate();
    let mut out = format!(
        "Two-core simple-EP model (a = {} W, b = {} s): E1 = 2ab = {}\n",
        t.a,
        t.b,
        2.0 * t.a * t.b
    );
    let rows: Vec<Vec<String>> = t
        .rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.1}", r.u),
                format!("{:.2}", r.delta),
                format!("{:.2}", r.e1),
                format!("{:.2}", r.e2),
                format!("{:.2}", r.e3),
                if r.holds { "E3>E2>E1".into() } else { "VIOLATED".into() },
            ]
        })
        .collect();
    out.push_str(&crate::render::table(&["U", "dU", "E1[J]", "E2[J]", "E3[J]", "order"], &rows));
    out.push_str(&format!(
        "theorem holds at every grid point: {}\n",
        if t.all_hold { "yes" } else { "NO" }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem_holds_across_grid() {
        let t = generate();
        assert!(t.rows.len() > 20);
        assert!(t.all_hold);
    }

    #[test]
    fn e1_constant_across_grid() {
        let t = generate();
        for r in &t.rows {
            assert!((r.e1 - 12.0).abs() < 1e-12);
        }
    }

    #[test]
    fn e3_blows_up_as_delta_approaches_u() {
        let t = generate();
        // Fix U = 0.5 and check E3 grows with ΔU.
        let mut prev = 0.0;
        for r in t.rows.iter().filter(|r| (r.u - 0.5).abs() < 1e-9) {
            assert!(r.e3 > prev);
            prev = r.e3;
        }
    }
}
