//! Fig. 6: non-additivity of dynamic energy as the group size G grows.
//!
//! For each matrix size, the kernel runs with G = 1..4 (at fixed BS and a
//! single launch). Under additivity the dynamic energy of the G-group
//! kernel would be `G × E_{G=1}`; the measured energy falls short because
//! the 58 W warm-up component is paid once per *launch*, not once per
//! product. The relative gap shrinks as compute energy grows with N and is
//! negligible beyond N ≈ 15360 on the P100 and N ≈ 10240 on the K40c.

use enprop_apps::sizes;
use enprop_ep::fixed_component_fit;
use enprop_gpusim::{GpuArch, TiledDgemm, TiledDgemmConfig};
use serde::{Deserialize, Serialize};

/// BS used for the G sweep (small enough that every G ≤ 8 is valid).
pub const FIG6_BS: usize = 16;
/// The G values the paper plots.
pub const FIG6_GROUPS: [usize; 4] = [1, 2, 3, 4];
/// Relative non-additivity below which we call the energies additive.
pub const ADDITIVE_THRESHOLD: f64 = 0.03;

/// One (N, G) cell of the figure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig6Row {
    /// Matrix size.
    pub n: usize,
    /// Group size.
    pub g: usize,
    /// Measured (modeled) dynamic energy of the G-group kernel, joules.
    pub energy: f64,
    /// The additive prediction `G × E_{G=1}`, joules.
    pub additive_prediction: f64,
    /// Relative non-additivity `(prediction − energy) / prediction`.
    pub nonadditivity: f64,
    /// Execution time of the G-group kernel, seconds.
    pub time: f64,
    /// The additive time prediction `G × t_{G=1}` (times *are* additive).
    pub additive_time: f64,
}

/// One GPU's Fig. 6 panel set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6Gpu {
    /// GPU name.
    pub gpu: String,
    /// All (N, G) cells.
    pub rows: Vec<Fig6Row>,
    /// Smallest sweep size from which G = 4 is additive (within
    /// [`ADDITIVE_THRESHOLD`]) at this and all larger sizes.
    pub additive_from_n: Option<usize>,
    /// The per-launch constant energy recovered by fitting `E(G) =
    /// slope·G + intercept` at N = 10240, joules.
    pub fixed_component_energy_j: f64,
    /// That component's implied constant power, given the active duration
    /// read off the power trace, watts — the paper reports 58 W.
    pub implied_component_w: f64,
}

/// Generates Fig. 6 for both GPUs.
pub fn generate() -> Vec<Fig6Gpu> {
    GpuArch::catalog()
        .into_iter()
        .map(|arch| {
            let name = arch.name.clone();
            let model = TiledDgemm::new(arch);
            let mut rows = Vec::new();
            for &n in &sizes::fig6_sizes() {
                let base =
                    model.estimate(&TiledDgemmConfig { n, bs: FIG6_BS, g: 1, r: 1 });
                let (e1, t1) = (base.dynamic_energy().value(), base.time.value());
                for &g in &FIG6_GROUPS {
                    let est = model.estimate(&TiledDgemmConfig { n, bs: FIG6_BS, g, r: 1 });
                    let energy = est.dynamic_energy().value();
                    let additive_prediction = g as f64 * e1;
                    rows.push(Fig6Row {
                        n,
                        g,
                        energy,
                        additive_prediction,
                        nonadditivity: (additive_prediction - energy) / additive_prediction,
                        time: est.time.value(),
                        additive_time: g as f64 * t1,
                    });
                }
            }
            // Recover the constant component the paper's analysis finds.
            // Cleanest design: compare k products in ONE launch (R = k —
            // the repeat loop has no i-cache confounder, unlike textual G)
            // against k separate launches; the difference is (k−1) copies
            // of whatever a launch pays exactly once. A linear fit over
            // several k values confirms a single constant explains it.
            let probe_n = 10240;
            let base = TiledDgemmConfig { n: probe_n, bs: FIG6_BS, g: 1, r: 1 };
            let ks: Vec<f64> = (1..=4).map(|k| k as f64).collect();
            let gaps: Vec<f64> = (1..=4)
                .map(|k| {
                    let separate = model.estimate_launch_sequence(&base, k);
                    let grouped =
                        model.estimate(&TiledDgemmConfig { r: k, ..base });
                    separate.dynamic_energy().value() - grouped.dynamic_energy().value()
                })
                .collect();
            // gap(k) = (k − 1)·E_fix ⇒ slope of gap over k is E_fix.
            let (intercept, _, r2) = {
                let (slope, icept, r2) = fixed_component_fit(&ks, &gaps);
                (slope, icept, r2)
            };
            debug_assert!(r2 > 0.999, "constant-component fit should be linear");
            let active = model.arch().power.warmup_duration_s;
            let implied_component_w = intercept / active;

            // First size from which G=4 stays additive through the rest of
            // the sweep.
            let g4: Vec<&Fig6Row> = rows.iter().filter(|r| r.g == 4).collect();
            let additive_from_n = g4
                .iter()
                .position(|r| r.nonadditivity.abs() <= ADDITIVE_THRESHOLD)
                .filter(|&i| g4[i..].iter().all(|r| r.nonadditivity.abs() <= ADDITIVE_THRESHOLD))
                .map(|i| g4[i].n);
            Fig6Gpu {
                gpu: name,
                rows,
                additive_from_n,
                fixed_component_energy_j: intercept,
                implied_component_w,
            }
        })
        .collect()
}

/// Renders the figure's rows.
pub fn render() -> String {
    let mut out = String::new();
    for gpu in generate() {
        out.push_str(&format!(
            "--- {} (BS = {FIG6_BS}) --- energies additive from N = {}\n\
             recovered constant component: {:.1} J per launch => {:.1} W \
             over its active window (paper: 58 W)\n",
            gpu.gpu,
            gpu.additive_from_n.map_or("never".to_string(), |n| n.to_string()),
            gpu.fixed_component_energy_j,
            gpu.implied_component_w,
        ));
        let rows: Vec<Vec<String>> = gpu
            .rows
            .iter()
            .filter(|r| r.g > 1)
            .map(|r| {
                vec![
                    r.n.to_string(),
                    r.g.to_string(),
                    format!("{:.1}", r.energy),
                    format!("{:.1}", r.additive_prediction),
                    crate::render::pct(r.nonadditivity),
                ]
            })
            .collect();
        out.push_str(&crate::render::table(
            &["N", "G", "E_d[J]", "G*E_g1[J]", "non-add"],
            &rows,
        ));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nonadditivity_high_at_small_n_and_decays() {
        for gpu in generate() {
            let at = |n: usize, g: usize| {
                gpu.rows
                    .iter()
                    .find(|r| r.n == n && r.g == g)
                    .map(|r| r.nonadditivity)
                    .unwrap()
            };
            assert!(at(5120, 4) > 0.08, "{}: {}", gpu.gpu, at(5120, 4));
            assert!(at(18432, 4) < ADDITIVE_THRESHOLD, "{}: {}", gpu.gpu, at(18432, 4));
            assert!(at(5120, 4) > at(10240, 4), "{}", gpu.gpu);
        }
    }

    #[test]
    fn thresholds_match_paper_ordering() {
        // K40c becomes additive at a smaller N than the P100.
        let gpus = generate();
        let k40 = gpus.iter().find(|g| g.gpu.contains("K40c")).unwrap();
        let p100 = gpus.iter().find(|g| g.gpu.contains("P100")).unwrap();
        let nk = k40.additive_from_n.expect("K40c additive threshold");
        let np = p100.additive_from_n.expect("P100 additive threshold");
        assert!(nk <= np, "K40c {nk} vs P100 {np}");
        assert!((8192..=12288).contains(&nk), "K40c threshold {nk}");
        assert!((12288..=18432).contains(&np), "P100 threshold {np}");
    }

    #[test]
    fn execution_times_are_additive() {
        // The paper observes time additivity throughout; the i-cache
        // penalty keeps ours within 2%.
        for gpu in generate() {
            for r in &gpu.rows {
                let rel = (r.time - r.additive_time).abs() / r.additive_time;
                assert!(rel < 0.02, "{} N={} G={}: {rel}", gpu.gpu, r.n, r.g);
            }
        }
    }

    #[test]
    fn recovered_component_is_the_58w_draw() {
        // The inverse analysis recovers the injected mechanism: the
        // intercept of E(G), divided by the component's active window,
        // lands on the paper's 58 W figure.
        for gpu in generate() {
            assert!(
                (gpu.implied_component_w - 58.0).abs() < 4.0,
                "{}: {} W",
                gpu.gpu,
                gpu.implied_component_w
            );
        }
    }

    #[test]
    fn g1_is_trivially_additive() {
        for gpu in generate() {
            for r in gpu.rows.iter().filter(|r| r.g == 1) {
                assert!(r.nonadditivity.abs() < 1e-12);
            }
        }
    }
}
