//! The paper's Fig. 5 kernel, executed functionally on the emulator.
//!
//! `dgemmX(C, A, B, N, G, R)` computes `G × R` matrix products
//! `C += A × B` of two dense `N × N` matrices, with per-block
//! shared-memory dimension `BS = X`. Each thread block computes one
//! `BS × BS` sub-matrix `Csub`; each thread one element of it, accumulating
//! tile sub-products staged through shared memory between `__syncthreads`
//! barriers.
//!
//! The kernel is expressed as a barrier-phase state machine for the
//! cooperative interpreter ([`super::exec`]): each phase is one segment of
//! the Fig. 5 body between `__syncthreads` boundaries — a tile *stage*
//! (fill `As`/`Bs`), the unrolled inner *mac* product, and the *retire*
//! segment (the `C += Csub` read-modify-write plus whatever the control
//! flow appends: the inter-group separator barrier, or the first stage of
//! the next run's product). The original closure form survives in
//! [`EmuDgemm::run_legacy`] for old-vs-new equivalence tests.

use super::exec::{
    run_grid, run_grid_monitored, run_grid_monitored_sampled, run_grid_unbatched, AccessSink,
    BatchCtx, BlockExit, BlockKernel, Dim2, PhaseCtx, PhaseOutcome, PhaseTrace, WavePlan,
};
use super::legacy;
use super::mem::{EmuEvents, EventCounters, GlobalMem};
use super::simd::SimdPath;
use crate::model::{shared_bytes, TiledDgemmConfig};
use crate::GpuArch;

/// The emulated application: a [`TiledDgemmConfig`] run as a real kernel.
///
/// The emulator requires `BS | N` (the CUDA sample the paper builds on
/// assumes full tiles); the analytic model handles padded tiles instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmuDgemm {
    cfg: TiledDgemmConfig,
    wave: WavePlan,
    simd: SimdPath,
}

impl EmuDgemm {
    /// Wraps a configuration. Panics unless `BS | N` and the group size is
    /// within the Fig. 5 family limits. The batched phase bodies run on
    /// the widest SIMD tier the host supports ([`SimdPath::detect`]);
    /// pin a narrower tier with [`with_simd`](EmuDgemm::with_simd).
    pub fn new(cfg: TiledDgemmConfig) -> Self {
        assert!(cfg.bs >= 1 && cfg.bs <= 32, "BS out of range: {}", cfg.bs);
        assert!(cfg.n.is_multiple_of(cfg.bs), "emulator requires BS | N ({} % {})", cfg.n, cfg.bs);
        assert!(cfg.g >= 1 && cfg.g <= 8, "G out of range: {}", cfg.g);
        assert!(cfg.r >= 1, "R must be positive");
        Self { cfg, wave: WavePlan::auto(), simd: SimdPath::detect() }
    }

    /// Binds the block-wave width to `arch`'s occupancy: at most as many
    /// blocks in flight as the device could hold resident, and never more
    /// than the host has cores.
    pub fn for_arch(cfg: TiledDgemmConfig, arch: &GpuArch) -> Self {
        let emu = Self::new(cfg);
        let wave = WavePlan::for_arch(arch, cfg.bs * cfg.bs, shared_bytes(cfg.bs));
        emu.with_wave(wave)
    }

    /// Overrides the block-wave width (tests; benchmarking).
    pub fn with_wave(mut self, wave: WavePlan) -> Self {
        self.wave = wave;
        self
    }

    /// Pins the batched phase bodies to a SIMD tier, clamped to what the
    /// host supports ([`SimdPath::pin`]). The forced-fallback equivalence
    /// suite and the explicit-SIMD benchmark baseline use this; every
    /// tier is bitwise-identical by contract.
    pub fn with_simd(mut self, path: SimdPath) -> Self {
        self.simd = path.pin();
        self
    }

    /// The SIMD tier the batched phase bodies run on.
    pub fn simd(&self) -> SimdPath {
        self.simd
    }

    /// The wrapped configuration.
    pub fn config(&self) -> TiledDgemmConfig {
        self.cfg
    }

    /// Launches the kernel on the phase interpreter:
    /// `C += (G·R) · A·B`, element count `N²` each. Returns the event
    /// counts of the launch.
    pub fn run(&self, a: &GlobalMem, b: &GlobalMem, c: &GlobalMem) -> EmuEvents {
        let TiledDgemmConfig { n, bs, .. } = self.cfg;
        assert_eq!(a.len(), n * n, "A size mismatch");
        assert_eq!(b.len(), n * n, "B size mismatch");
        assert_eq!(c.len(), n * n, "C size mismatch");

        let tiles = n / bs;
        let events = EventCounters::new();
        let kernel = DgemmKernel { cfg: self.cfg, tiles, simd: self.simd, a, b, c };
        run_grid(Dim2::new(tiles, tiles), &kernel, &events, self.wave);
        events.snapshot()
    }

    /// [`run`](EmuDgemm::run) with the batched fast path disabled
    /// ([`run_grid_unbatched`]): every phase takes the per-thread scalar
    /// loop, exactly the pre-batching interpreter. The baseline of the
    /// batched-vs-scalar benchmark and the oracle of the equivalence
    /// suite; results and event counts are bitwise-identical to
    /// [`run`](EmuDgemm::run) by contract.
    pub fn run_unbatched(&self, a: &GlobalMem, b: &GlobalMem, c: &GlobalMem) -> EmuEvents {
        let TiledDgemmConfig { n, bs, .. } = self.cfg;
        assert_eq!(a.len(), n * n, "A size mismatch");
        assert_eq!(b.len(), n * n, "B size mismatch");
        assert_eq!(c.len(), n * n, "C size mismatch");

        let tiles = n / bs;
        let events = EventCounters::new();
        let kernel = DgemmKernel { cfg: self.cfg, tiles, simd: self.simd, a, b, c };
        run_grid_unbatched(Dim2::new(tiles, tiles), &kernel, &events, self.wave);
        events.snapshot()
    }

    /// Launches the kernel under instrumentation ([`run_grid_monitored`]):
    /// every memory access is reported to a per-block sink from
    /// `make_sink`, blocks run serially in row-major order for
    /// deterministic diagnostics, and each block's sink plus its
    /// [`BlockExit`] are handed back through `collect`. The sanitizer's
    /// entry point; with an inert sink the results are bitwise-identical
    /// to [`run`](EmuDgemm::run).
    pub fn run_monitored<S: AccessSink>(
        &self,
        a: &GlobalMem,
        b: &GlobalMem,
        c: &GlobalMem,
        make_sink: impl FnMut(usize, usize) -> S,
        collect: impl FnMut(usize, usize, S, BlockExit),
    ) -> EmuEvents {
        let TiledDgemmConfig { n, bs, .. } = self.cfg;
        assert_eq!(a.len(), n * n, "A size mismatch");
        assert_eq!(b.len(), n * n, "B size mismatch");
        assert_eq!(c.len(), n * n, "C size mismatch");

        let tiles = n / bs;
        let events = EventCounters::new();
        let kernel = DgemmKernel { cfg: self.cfg, tiles, simd: self.simd, a, b, c };
        run_grid_monitored(Dim2::new(tiles, tiles), &kernel, &events, make_sink, collect);
        events.snapshot()
    }

    /// [`run_monitored`](EmuDgemm::run_monitored) with per-block sampling
    /// ([`run_grid_monitored_sampled`]): blocks selected by `select` run
    /// fully instrumented, the rest take the uninstrumented fast path
    /// (batched) and never touch the monitor. Results and event counts
    /// stay identical to an unmonitored run; only checker *coverage* is
    /// sampled.
    pub fn run_monitored_sampled<S: AccessSink>(
        &self,
        a: &GlobalMem,
        b: &GlobalMem,
        c: &GlobalMem,
        select: impl FnMut(usize, usize) -> bool,
        make_sink: impl FnMut(usize, usize) -> S,
        collect: impl FnMut(usize, usize, S, BlockExit),
    ) -> EmuEvents {
        let TiledDgemmConfig { n, bs, .. } = self.cfg;
        assert_eq!(a.len(), n * n, "A size mismatch");
        assert_eq!(b.len(), n * n, "B size mismatch");
        assert_eq!(c.len(), n * n, "C size mismatch");

        let tiles = n / bs;
        let events = EventCounters::new();
        let kernel = DgemmKernel { cfg: self.cfg, tiles, simd: self.simd, a, b, c };
        run_grid_monitored_sampled(
            Dim2::new(tiles, tiles),
            &kernel,
            &events,
            select,
            make_sink,
            collect,
        );
        events.snapshot()
    }

    /// Launches the kernel on the retired OS-thread engine
    /// ([`super::legacy`]) — the equivalence oracle and the "before" side
    /// of the engine benchmark. Semantics and event counts are identical
    /// to [`run`](EmuDgemm::run); wall-clock is not.
    pub fn run_legacy(&self, a: &GlobalMem, b: &GlobalMem, c: &GlobalMem) -> EmuEvents {
        let TiledDgemmConfig { n, bs, g, r } = self.cfg;
        assert_eq!(a.len(), n * n, "A size mismatch");
        assert_eq!(b.len(), n * n, "B size mismatch");
        assert_eq!(c.len(), n * n, "C size mismatch");

        let tiles = n / bs;
        let events = EventCounters::new();
        legacy::launch(
            Dim2::new(tiles, tiles),
            Dim2::new(bs, bs),
            2 * bs * bs,
            &events,
            |ctx: &legacy::ThreadCtx<'_>| {
                // `for (int run = 0; run < R; run++) dgemmG{G}(...)`.
                for _run in 0..r {
                    for grp in 0..g {
                        legacy_matrix_product(ctx, a, b, c, n, bs);
                        // Inter-product separator within a group body.
                        if grp + 1 < g {
                            ctx.sync_threads();
                        }
                    }
                }
            },
        );
        events.snapshot()
    }
}

/// The Fig. 5 kernel as a phase state machine.
struct DgemmKernel<'a> {
    cfg: TiledDgemmConfig,
    tiles: usize,
    simd: SimdPath,
    a: &'a GlobalMem,
    b: &'a GlobalMem,
    c: &'a GlobalMem,
}

/// Which barrier-delimited segment a thread executes next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    /// Fill one element of `As` and `Bs` from global memory.
    Stage,
    /// The `#pragma unroll` inner product over the staged tile.
    Mac,
    /// `C[...] += Csub`, then the control flow between products.
    Retire,
}

/// Per-thread registers of the Fig. 5 body, carried across phases.
struct DgemmState {
    csub: f64,
    /// Current A-tile base index (`a` in Fig. 5).
    ai: usize,
    /// Current B-tile base index (`b` in Fig. 5).
    bi: usize,
    /// Tile step within the current product.
    tile: usize,
    /// Products completed so far (of `G × R`).
    product: usize,
    step: Step,
}

impl DgemmKernel<'_> {
    /// Shared tile layout: `As` at `[0, bs²)`, `Bs` at `[bs², 2·bs²)`.
    #[inline]
    fn as_idx(&self, row: usize, col: usize) -> usize {
        row * self.cfg.bs + col
    }

    #[inline]
    fn bs_idx(&self, row: usize, col: usize) -> usize {
        self.cfg.bs * self.cfg.bs + row * self.cfg.bs + col
    }

    /// A fresh product's starting tile indices for block `(bx, by)`.
    #[inline]
    fn product_start(&self, bx: usize, by: usize) -> (usize, usize) {
        (self.cfg.n * self.cfg.bs * by, self.cfg.bs * bx)
    }

    /// One tile stage: fill this thread's element of `As` and `Bs`.
    fn stage<S: AccessSink>(&self, st: &DgemmState, ctx: &mut PhaseCtx<'_, S>) {
        let (n, _bs) = (self.cfg.n, self.cfg.bs);
        let (tx, ty) = (ctx.tx, ctx.ty);
        let av = ctx.global_load(self.a, st.ai + n * ty + tx);
        ctx.shared_store(self.as_idx(ty, tx), av);
        let bv = ctx.global_load(self.b, st.bi + n * ty + tx);
        ctx.shared_store(self.bs_idx(ty, tx), bv);
    }

    /// The unrolled inner product over the staged tile.
    fn mac<S: AccessSink>(&self, st: &mut DgemmState, ctx: &mut PhaseCtx<'_, S>) {
        let bs = self.cfg.bs;
        let (tx, ty) = (ctx.tx, ctx.ty);
        for k in 0..bs {
            st.csub += ctx.shared_load(self.as_idx(ty, k)) * ctx.shared_load(self.bs_idx(k, tx));
            ctx.count_flops(2);
        }
    }

    /// `C[...] += Csub` — a read-modify-write of this thread's element.
    fn retire<S: AccessSink>(&self, st: &DgemmState, ctx: &mut PhaseCtx<'_, S>) {
        let (n, bs) = (self.cfg.n, self.cfg.bs);
        let ci = n * bs * ctx.by + bs * ctx.bx + n * ctx.ty + ctx.tx;
        let prev = ctx.global_load(self.c, ci);
        ctx.global_store(self.c, ci, prev + st.csub);
    }

    /// Batched tile stage: each thread row of `As`/`Bs` is one contiguous
    /// run of global memory (`ai + n·ty + tx` is consecutive in `tx`), so
    /// the whole stage collapses to `2·bs` row copies, unrolled by 4.
    /// Events are counted in bulk: `2·bs²` global loads + shared stores,
    /// exactly what the scalar loop counts one by one.
    fn batch_stage(&self, states: &[DgemmState], ctx: &mut BatchCtx<'_>) {
        let (n, bs) = (self.cfg.n, self.cfg.bs);
        let (ai, bi) = (states[0].ai, states[0].bi);
        let bs2 = bs * bs;
        let (as_tile, bs_tile) = ctx.shared().split_at_mut(bs2);
        for ty in 0..bs {
            let a_base = ai + n * ty;
            let b_base = bi + n * ty;
            let as_row = &mut as_tile[ty * bs..(ty + 1) * bs];
            let bs_row = &mut bs_tile[ty * bs..(ty + 1) * bs];
            let mut tx = 0;
            while tx + 4 <= bs {
                as_row[tx] = self.a.load(a_base + tx);
                as_row[tx + 1] = self.a.load(a_base + tx + 1);
                as_row[tx + 2] = self.a.load(a_base + tx + 2);
                as_row[tx + 3] = self.a.load(a_base + tx + 3);
                bs_row[tx] = self.b.load(b_base + tx);
                bs_row[tx + 1] = self.b.load(b_base + tx + 1);
                bs_row[tx + 2] = self.b.load(b_base + tx + 2);
                bs_row[tx + 3] = self.b.load(b_base + tx + 3);
                tx += 4;
            }
            while tx < bs {
                as_row[tx] = self.a.load(a_base + tx);
                bs_row[tx] = self.b.load(b_base + tx);
                tx += 1;
            }
        }
        let counts = ctx.counters();
        counts.global_loads += 2 * bs2 as u64;
        counts.shared_stores += 2 * bs2 as u64;
    }

    /// Batched inner product: one pass over the thread index with each
    /// thread's `k` chain kept as a single sequential accumulator (unrolled
    /// by 4 but **not** reassociated), so every `csub` is bit-for-bit the
    /// scalar loop's. Bulk counts: `2·bs³` flops and shared loads.
    fn batch_mac(&self, states: &mut [DgemmState], ctx: &mut BatchCtx<'_>) {
        let bs = self.cfg.bs;
        let bs2 = bs * bs;
        let (as_tile, bs_tile) = ctx.shared().split_at(bs2);
        for ty in 0..bs {
            let a_row = &as_tile[ty * bs..(ty + 1) * bs];
            for tx in 0..bs {
                let st = &mut states[ty * bs + tx];
                let mut acc = st.csub;
                let mut k = 0;
                while k + 4 <= bs {
                    acc += a_row[k] * bs_tile[k * bs + tx];
                    acc += a_row[k + 1] * bs_tile[(k + 1) * bs + tx];
                    acc += a_row[k + 2] * bs_tile[(k + 2) * bs + tx];
                    acc += a_row[k + 3] * bs_tile[(k + 3) * bs + tx];
                    k += 4;
                }
                while k < bs {
                    acc += a_row[k] * bs_tile[k * bs + tx];
                    k += 1;
                }
                st.csub = acc;
            }
        }
        let counts = ctx.counters();
        let muls = (bs * bs2) as u64;
        counts.flops += 2 * muls;
        counts.shared_loads += 2 * muls;
    }

    /// Batched `C += Csub`: each thread row retires as one contiguous run
    /// of read-modify-writes. Bulk counts: `bs²` global loads and stores.
    fn batch_retire(&self, states: &[DgemmState], ctx: &mut BatchCtx<'_>) {
        let (n, bs) = (self.cfg.n, self.cfg.bs);
        let base = n * bs * ctx.by + bs * ctx.bx;
        for ty in 0..bs {
            let row = base + n * ty;
            for tx in 0..bs {
                let ci = row + tx;
                let prev = self.c.load(ci);
                self.c.store(ci, prev + states[ty * bs + tx].csub);
            }
        }
        let counts = ctx.counters();
        counts.global_loads += (bs * bs) as u64;
        counts.global_stores += (bs * bs) as u64;
    }

    // ---- explicit-SIMD dispatch --------------------------------------
    //
    // The tier is carried as data ([`SimdPath`]), resolved once at
    // `EmuDgemm` construction and clamped to host support, so the
    // `unsafe` feature-gated calls below are sound by construction.

    fn stage_dispatch(&self, states: &[DgemmState], ctx: &mut BatchCtx<'_>) {
        match self.simd {
            // SAFETY: `simd` never exceeds `SimdPath::detect()`.
            #[cfg(target_arch = "x86_64")]
            SimdPath::Avx512 => unsafe { self.batch_stage_avx512(states, ctx) },
            #[cfg(target_arch = "x86_64")]
            SimdPath::Avx2 => unsafe { self.batch_stage_avx2(states, ctx) },
            _ => self.batch_stage(states, ctx),
        }
    }

    fn mac_dispatch(&self, states: &mut [DgemmState], ctx: &mut BatchCtx<'_>) {
        match self.simd {
            // SAFETY: `simd` never exceeds `SimdPath::detect()`.
            #[cfg(target_arch = "x86_64")]
            SimdPath::Avx512 => unsafe { self.batch_mac_avx512(states, ctx) },
            #[cfg(target_arch = "x86_64")]
            SimdPath::Avx2 => unsafe { self.batch_mac_avx2(states, ctx) },
            _ => self.batch_mac(states, ctx),
        }
    }

    fn retire_dispatch(&self, states: &[DgemmState], ctx: &mut BatchCtx<'_>) {
        match self.simd {
            // SAFETY: `simd` never exceeds `SimdPath::detect()`.
            #[cfg(target_arch = "x86_64")]
            SimdPath::Avx512 => unsafe { self.batch_retire_avx512(states, ctx) },
            #[cfg(target_arch = "x86_64")]
            SimdPath::Avx2 => unsafe { self.batch_retire_avx2(states, ctx) },
            _ => self.batch_retire(states, ctx),
        }
    }

    /// Explicit-SIMD stage (AVX2): the row copies of
    /// [`batch_stage`](Self::batch_stage) as 4-lane vector moves. Pure
    /// copies — no arithmetic — so bitwise identity is trivial; the
    /// `range_ptr` bounds check covers each row once up front.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn batch_stage_avx2(&self, states: &[DgemmState], ctx: &mut BatchCtx<'_>) {
        use core::arch::x86_64::{_mm256_loadu_pd, _mm256_storeu_pd};
        let (n, bs) = (self.cfg.n, self.cfg.bs);
        let (ai, bi) = (states[0].ai, states[0].bi);
        let bs2 = bs * bs;
        let (as_tile, bs_tile) = ctx.shared().split_at_mut(bs2);
        for ty in 0..bs {
            let a_src = self.a.range_ptr(ai + n * ty, bs);
            let b_src = self.b.range_ptr(bi + n * ty, bs);
            let a_dst = as_tile[ty * bs..(ty + 1) * bs].as_mut_ptr();
            let b_dst = bs_tile[ty * bs..(ty + 1) * bs].as_mut_ptr();
            let mut tx = 0;
            // SAFETY: sources are `range_ptr`-checked `bs`-length rows,
            // destinations are `bs`-length subslices, and `tx + lanes ≤ bs`.
            unsafe {
                while tx + 4 <= bs {
                    _mm256_storeu_pd(a_dst.add(tx), _mm256_loadu_pd(a_src.add(tx)));
                    _mm256_storeu_pd(b_dst.add(tx), _mm256_loadu_pd(b_src.add(tx)));
                    tx += 4;
                }
                while tx < bs {
                    *a_dst.add(tx) = *a_src.add(tx);
                    *b_dst.add(tx) = *b_src.add(tx);
                    tx += 1;
                }
            }
        }
        let counts = ctx.counters();
        counts.global_loads += 2 * bs2 as u64;
        counts.shared_stores += 2 * bs2 as u64;
    }

    /// Explicit-SIMD stage (AVX-512): 8-lane vector moves.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    unsafe fn batch_stage_avx512(&self, states: &[DgemmState], ctx: &mut BatchCtx<'_>) {
        use core::arch::x86_64::{_mm512_loadu_pd, _mm512_storeu_pd};
        let (n, bs) = (self.cfg.n, self.cfg.bs);
        let (ai, bi) = (states[0].ai, states[0].bi);
        let bs2 = bs * bs;
        let (as_tile, bs_tile) = ctx.shared().split_at_mut(bs2);
        for ty in 0..bs {
            let a_src = self.a.range_ptr(ai + n * ty, bs);
            let b_src = self.b.range_ptr(bi + n * ty, bs);
            let a_dst = as_tile[ty * bs..(ty + 1) * bs].as_mut_ptr();
            let b_dst = bs_tile[ty * bs..(ty + 1) * bs].as_mut_ptr();
            let mut tx = 0;
            // SAFETY: sources are `range_ptr`-checked `bs`-length rows,
            // destinations are `bs`-length subslices, and `tx + lanes ≤ bs`.
            unsafe {
                while tx + 8 <= bs {
                    _mm512_storeu_pd(a_dst.add(tx), _mm512_loadu_pd(a_src.add(tx)));
                    _mm512_storeu_pd(b_dst.add(tx), _mm512_loadu_pd(b_src.add(tx)));
                    tx += 8;
                }
                while tx < bs {
                    *a_dst.add(tx) = *a_src.add(tx);
                    *b_dst.add(tx) = *b_src.add(tx);
                    tx += 1;
                }
            }
        }
        let counts = ctx.counters();
        counts.global_loads += 2 * bs2 as u64;
        counts.shared_stores += 2 * bs2 as u64;
    }

    /// Explicit-SIMD inner product (AVX2): vector lanes map across `tx`
    /// — four *threads* per vector — so each lane's `k` chain stays one
    /// sequential accumulator in scalar program order. Multiply and add
    /// stay separate instructions (never FMA): the scalar oracle rounds
    /// after every operation, and fusing would skip that rounding.
    /// Independent `tx` chunks are interleaved to overlap add latency —
    /// parallelism across threads, never within one chain. The strided
    /// `csub` registers are gathered into a contiguous scratch row once
    /// per thread row (`O(bs²)` traffic against `O(bs³)` compute).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn batch_mac_avx2(&self, states: &mut [DgemmState], ctx: &mut BatchCtx<'_>) {
        use core::arch::x86_64::{
            _mm256_add_pd, _mm256_loadu_pd, _mm256_mul_pd, _mm256_set1_pd, _mm256_storeu_pd,
        };
        let bs = self.cfg.bs;
        let bs2 = bs * bs;
        let (as_tile, bs_tile) = ctx.shared().split_at(bs2);
        let bt = bs_tile.as_ptr();
        let mut acc = [0.0f64; 32];
        for ty in 0..bs {
            let a_row = &as_tile[ty * bs..(ty + 1) * bs];
            let row = &mut states[ty * bs..(ty + 1) * bs];
            for (tx, st) in row.iter().enumerate() {
                acc[tx] = st.csub;
            }
            let ap = acc.as_mut_ptr();
            let mut tx = 0;
            // SAFETY: `acc` holds `bs ≤ 32` live lanes, `bt` spans the
            // `bs²` `Bs` tile, and every offset keeps `tx + lanes ≤ bs`
            // with `k < bs`.
            unsafe {
                while tx + 16 <= bs {
                    let mut v0 = _mm256_loadu_pd(ap.add(tx));
                    let mut v1 = _mm256_loadu_pd(ap.add(tx + 4));
                    let mut v2 = _mm256_loadu_pd(ap.add(tx + 8));
                    let mut v3 = _mm256_loadu_pd(ap.add(tx + 12));
                    for (k, &a_k) in a_row.iter().enumerate() {
                        let w = _mm256_set1_pd(a_k);
                        let b = bt.add(k * bs + tx);
                        v0 = _mm256_add_pd(v0, _mm256_mul_pd(w, _mm256_loadu_pd(b)));
                        v1 = _mm256_add_pd(v1, _mm256_mul_pd(w, _mm256_loadu_pd(b.add(4))));
                        v2 = _mm256_add_pd(v2, _mm256_mul_pd(w, _mm256_loadu_pd(b.add(8))));
                        v3 = _mm256_add_pd(v3, _mm256_mul_pd(w, _mm256_loadu_pd(b.add(12))));
                    }
                    _mm256_storeu_pd(ap.add(tx), v0);
                    _mm256_storeu_pd(ap.add(tx + 4), v1);
                    _mm256_storeu_pd(ap.add(tx + 8), v2);
                    _mm256_storeu_pd(ap.add(tx + 12), v3);
                    tx += 16;
                }
                while tx + 4 <= bs {
                    let mut v = _mm256_loadu_pd(ap.add(tx));
                    for (k, &a_k) in a_row.iter().enumerate() {
                        let w = _mm256_set1_pd(a_k);
                        v = _mm256_add_pd(v, _mm256_mul_pd(w, _mm256_loadu_pd(bt.add(k * bs + tx))));
                    }
                    _mm256_storeu_pd(ap.add(tx), v);
                    tx += 4;
                }
            }
            while tx < bs {
                let mut s = acc[tx];
                for (k, &a_k) in a_row.iter().enumerate() {
                    s += a_k * bs_tile[k * bs + tx];
                }
                acc[tx] = s;
                tx += 1;
            }
            for (tx, st) in row.iter_mut().enumerate() {
                st.csub = acc[tx];
            }
        }
        let counts = ctx.counters();
        let muls = (bs * bs2) as u64;
        counts.flops += 2 * muls;
        counts.shared_loads += 2 * muls;
    }

    /// Explicit-SIMD inner product (AVX-512): the AVX2 body's contract
    /// at 8 lanes per vector.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    unsafe fn batch_mac_avx512(&self, states: &mut [DgemmState], ctx: &mut BatchCtx<'_>) {
        use core::arch::x86_64::{
            _mm512_add_pd, _mm512_loadu_pd, _mm512_mul_pd, _mm512_set1_pd, _mm512_storeu_pd,
        };
        let bs = self.cfg.bs;
        let bs2 = bs * bs;
        let (as_tile, bs_tile) = ctx.shared().split_at(bs2);
        let bt = bs_tile.as_ptr();
        let mut acc = [0.0f64; 32];
        for ty in 0..bs {
            let a_row = &as_tile[ty * bs..(ty + 1) * bs];
            let row = &mut states[ty * bs..(ty + 1) * bs];
            for (tx, st) in row.iter().enumerate() {
                acc[tx] = st.csub;
            }
            let ap = acc.as_mut_ptr();
            let mut tx = 0;
            // SAFETY: `acc` holds `bs ≤ 32` live lanes, `bt` spans the
            // `bs²` `Bs` tile, and every offset keeps `tx + lanes ≤ bs`
            // with `k < bs`.
            unsafe {
                while tx + 16 <= bs {
                    let mut v0 = _mm512_loadu_pd(ap.add(tx));
                    let mut v1 = _mm512_loadu_pd(ap.add(tx + 8));
                    for (k, &a_k) in a_row.iter().enumerate() {
                        let w = _mm512_set1_pd(a_k);
                        let b = bt.add(k * bs + tx);
                        v0 = _mm512_add_pd(v0, _mm512_mul_pd(w, _mm512_loadu_pd(b)));
                        v1 = _mm512_add_pd(v1, _mm512_mul_pd(w, _mm512_loadu_pd(b.add(8))));
                    }
                    _mm512_storeu_pd(ap.add(tx), v0);
                    _mm512_storeu_pd(ap.add(tx + 8), v1);
                    tx += 16;
                }
                while tx + 8 <= bs {
                    let mut v = _mm512_loadu_pd(ap.add(tx));
                    for (k, &a_k) in a_row.iter().enumerate() {
                        let w = _mm512_set1_pd(a_k);
                        v = _mm512_add_pd(v, _mm512_mul_pd(w, _mm512_loadu_pd(bt.add(k * bs + tx))));
                    }
                    _mm512_storeu_pd(ap.add(tx), v);
                    tx += 8;
                }
            }
            while tx < bs {
                let mut s = acc[tx];
                for (k, &a_k) in a_row.iter().enumerate() {
                    s += a_k * bs_tile[k * bs + tx];
                }
                acc[tx] = s;
                tx += 1;
            }
            for (tx, st) in row.iter_mut().enumerate() {
                st.csub = acc[tx];
            }
        }
        let counts = ctx.counters();
        let muls = (bs * bs2) as u64;
        counts.flops += 2 * muls;
        counts.shared_loads += 2 * muls;
    }

    /// Explicit-SIMD retire (AVX2): vectorized `C += Csub` row
    /// read-modify-writes; one add per element, same order as scalar.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn batch_retire_avx2(&self, states: &[DgemmState], ctx: &mut BatchCtx<'_>) {
        use core::arch::x86_64::{_mm256_add_pd, _mm256_loadu_pd, _mm256_storeu_pd};
        let (n, bs) = (self.cfg.n, self.cfg.bs);
        let base = n * bs * ctx.by + bs * ctx.bx;
        let mut csub = [0.0f64; 32];
        for ty in 0..bs {
            let row = &states[ty * bs..(ty + 1) * bs];
            for (tx, st) in row.iter().enumerate() {
                csub[tx] = st.csub;
            }
            let c_row = self.c.range_ptr(base + n * ty, bs);
            let sp = csub.as_ptr();
            let mut tx = 0;
            // SAFETY: `c_row` is a `range_ptr`-checked `bs`-length row,
            // `csub` holds `bs ≤ 32` live lanes, and `tx + lanes ≤ bs`.
            unsafe {
                while tx + 4 <= bs {
                    let prev = _mm256_loadu_pd(c_row.add(tx));
                    let s = _mm256_loadu_pd(sp.add(tx));
                    _mm256_storeu_pd(c_row.add(tx), _mm256_add_pd(prev, s));
                    tx += 4;
                }
                while tx < bs {
                    *c_row.add(tx) += csub[tx];
                    tx += 1;
                }
            }
        }
        let counts = ctx.counters();
        counts.global_loads += (bs * bs) as u64;
        counts.global_stores += (bs * bs) as u64;
    }

    /// Explicit-SIMD retire (AVX-512): 8-lane `C += Csub`.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    unsafe fn batch_retire_avx512(&self, states: &[DgemmState], ctx: &mut BatchCtx<'_>) {
        use core::arch::x86_64::{_mm512_add_pd, _mm512_loadu_pd, _mm512_storeu_pd};
        let (n, bs) = (self.cfg.n, self.cfg.bs);
        let base = n * bs * ctx.by + bs * ctx.bx;
        let mut csub = [0.0f64; 32];
        for ty in 0..bs {
            let row = &states[ty * bs..(ty + 1) * bs];
            for (tx, st) in row.iter().enumerate() {
                csub[tx] = st.csub;
            }
            let c_row = self.c.range_ptr(base + n * ty, bs);
            let sp = csub.as_ptr();
            let mut tx = 0;
            // SAFETY: `c_row` is a `range_ptr`-checked `bs`-length row,
            // `csub` holds `bs ≤ 32` live lanes, and `tx + lanes ≤ bs`.
            unsafe {
                while tx + 8 <= bs {
                    let prev = _mm512_loadu_pd(c_row.add(tx));
                    let s = _mm512_loadu_pd(sp.add(tx));
                    _mm512_storeu_pd(c_row.add(tx), _mm512_add_pd(prev, s));
                    tx += 8;
                }
                while tx < bs {
                    *c_row.add(tx) += csub[tx];
                    tx += 1;
                }
            }
        }
        let counts = ctx.counters();
        counts.global_loads += (bs * bs) as u64;
        counts.global_stores += (bs * bs) as u64;
    }

    // ---- access-trace emission (bulk-sink monitored path) ------------
    //
    // Record streams must match what the scalar loop's per-access hooks
    // would have reported: thread-major within a phase, per-thread
    // accesses in scalar program order, global records grouped into
    // per-buffer runs (each cell here belongs to exactly one thread per
    // phase, so per-cell shadow order is preserved by construction).

    /// Stage records: global loads of the `A` and `B` tile rows, shared
    /// stores into `As`/`Bs`.
    fn trace_stage(&self, ai: usize, bi: usize, t: &mut PhaseTrace) {
        let (n, bs) = (self.cfg.n, self.cfg.bs);
        let bs2 = bs * bs;
        t.shared.reserve(2 * bs2);
        t.global.reserve(2 * bs2);
        t.global.begin_run(self.a.id(), self.a.len());
        for ty in 0..bs {
            let base = ai + n * ty;
            for tx in 0..bs {
                t.global.push_load(tx, ty, base + tx);
            }
        }
        t.global.begin_run(self.b.id(), self.b.len());
        for ty in 0..bs {
            let base = bi + n * ty;
            for tx in 0..bs {
                t.global.push_load(tx, ty, base + tx);
            }
        }
        for ty in 0..bs {
            for tx in 0..bs {
                t.shared.push_store(tx, ty, self.as_idx(ty, tx));
                t.shared.push_store(tx, ty, self.bs_idx(ty, tx));
            }
        }
    }

    /// Mac records: each thread's interleaved `As`/`Bs` shared loads, `k`
    /// ascending — the exact scalar hook order.
    fn trace_mac(&self, t: &mut PhaseTrace) {
        let bs = self.cfg.bs;
        t.shared.reserve(2 * bs * bs * bs);
        for ty in 0..bs {
            for tx in 0..bs {
                for k in 0..bs {
                    t.shared.push_load(tx, ty, self.as_idx(ty, k));
                    t.shared.push_load(tx, ty, self.bs_idx(k, tx));
                }
            }
        }
    }

    /// Retire records: one `C` run of load + store per element.
    fn trace_retire(&self, bx: usize, by: usize, t: &mut PhaseTrace) {
        let (n, bs) = (self.cfg.n, self.cfg.bs);
        let base = n * bs * by + bs * bx;
        t.global.reserve(2 * bs * bs);
        t.global.begin_run(self.c.id(), self.c.len());
        for ty in 0..bs {
            let row = base + n * ty;
            for tx in 0..bs {
                t.global.push_load(tx, ty, row + tx);
                t.global.push_store(tx, ty, row + tx);
            }
        }
    }
}

impl BlockKernel for DgemmKernel<'_> {
    type State = DgemmState;

    fn block(&self) -> Dim2 {
        Dim2::new(self.cfg.bs, self.cfg.bs)
    }

    fn shared_len(&self) -> usize {
        2 * self.cfg.bs * self.cfg.bs
    }

    fn init(&self, bx: usize, by: usize, _tx: usize, _ty: usize) -> DgemmState {
        let (ai, bi) = self.product_start(bx, by);
        DgemmState { csub: 0.0, ai, bi, tile: 0, product: 0, step: Step::Stage }
    }

    fn run_phase<S: AccessSink>(
        &self,
        _phase: usize,
        st: &mut DgemmState,
        ctx: &mut PhaseCtx<'_, S>,
    ) -> PhaseOutcome {
        let TiledDgemmConfig { n, bs, g, r } = self.cfg;
        match st.step {
            Step::Stage => {
                self.stage(st, ctx);
                st.step = Step::Mac;
                PhaseOutcome::Sync
            }
            Step::Mac => {
                self.mac(st, ctx);
                st.tile += 1;
                st.ai += bs;
                st.bi += bs * n;
                st.step = if st.tile == self.tiles { Step::Retire } else { Step::Stage };
                PhaseOutcome::Sync
            }
            Step::Retire => {
                self.retire(st, ctx);
                st.product += 1;
                if st.product == g * r {
                    return PhaseOutcome::Done;
                }
                // Reset the product registers.
                st.csub = 0.0;
                st.tile = 0;
                (st.ai, st.bi) = self.product_start(ctx.bx, ctx.by);
                if st.product.is_multiple_of(g) {
                    // Run boundary: no separator barrier — Fig. 5 flows
                    // straight from `C += Csub` into the next run's first
                    // tile stage within the same barrier segment.
                    self.stage(st, ctx);
                    st.step = Step::Mac;
                } else {
                    // Intra-group boundary: the segment ends at the
                    // inter-product separator `__syncthreads`.
                    st.step = Step::Stage;
                }
                PhaseOutcome::Sync
            }
        }
    }

    fn run_phase_batch(
        &self,
        _phase: usize,
        states: &mut [DgemmState],
        ctx: &mut BatchCtx<'_>,
    ) -> Option<PhaseOutcome> {
        let TiledDgemmConfig { n, bs, g, r } = self.cfg;
        // The step register is block-uniform by construction (every thread
        // advances it identically); batch on thread 0's view and write the
        // uniform registers back to every state.
        match states[0].step {
            Step::Stage => {
                if let Some(t) = ctx.trace() {
                    self.trace_stage(states[0].ai, states[0].bi, t);
                }
                self.stage_dispatch(states, ctx);
                for st in states.iter_mut() {
                    st.step = Step::Mac;
                }
                Some(PhaseOutcome::Sync)
            }
            Step::Mac => {
                if let Some(t) = ctx.trace() {
                    self.trace_mac(t);
                }
                self.mac_dispatch(states, ctx);
                for st in states.iter_mut() {
                    st.tile += 1;
                    st.ai += bs;
                    st.bi += bs * n;
                    st.step = if st.tile == self.tiles { Step::Retire } else { Step::Stage };
                }
                Some(PhaseOutcome::Sync)
            }
            Step::Retire => {
                let (bx, by) = (ctx.bx, ctx.by);
                if let Some(t) = ctx.trace() {
                    self.trace_retire(bx, by, t);
                }
                self.retire_dispatch(states, ctx);
                let product = states[0].product + 1;
                if product == g * r {
                    for st in states.iter_mut() {
                        st.product = product;
                    }
                    return Some(PhaseOutcome::Done);
                }
                let (ai, bi) = self.product_start(ctx.bx, ctx.by);
                for st in states.iter_mut() {
                    st.product = product;
                    st.csub = 0.0;
                    st.tile = 0;
                    st.ai = ai;
                    st.bi = bi;
                }
                if product.is_multiple_of(g) {
                    // Run boundary: retire flows straight into the next
                    // run's first stage within the same barrier segment,
                    // exactly as the scalar body does.
                    if let Some(t) = ctx.trace() {
                        self.trace_stage(ai, bi, t);
                    }
                    self.stage_dispatch(states, ctx);
                    for st in states.iter_mut() {
                        st.step = Step::Mac;
                    }
                } else {
                    for st in states.iter_mut() {
                        st.step = Step::Stage;
                    }
                }
                Some(PhaseOutcome::Sync)
            }
        }
    }
}

/// One device matrix product on the legacy engine — the body of `dgemmG1`
/// (Fig. 5 lines 1–21), closure form.
fn legacy_matrix_product(
    ctx: &legacy::ThreadCtx<'_>,
    a: &GlobalMem,
    b: &GlobalMem,
    c: &GlobalMem,
    n: usize,
    bs: usize,
) {
    let (bx, by, tx, ty) = (ctx.bx, ctx.by, ctx.tx, ctx.ty);
    // Shared tiles: As at [0, bs²), Bs at [bs², 2bs²).
    let as_idx = |row: usize, col: usize| row * bs + col;
    let bs_idx = |row: usize, col: usize| bs * bs + row * bs + col;

    let a_begin = n * bs * by;
    let a_end = a_begin + n - 1;
    let a_step = bs;
    let b_step = bs * n;
    let mut csub = 0.0;

    let mut ai = a_begin;
    let mut bi = bs * bx;
    while ai <= a_end {
        // Stage one A tile and one B tile into shared memory.
        ctx.shared_store(as_idx(ty, tx), ctx.global_load(a, ai + n * ty + tx));
        ctx.shared_store(bs_idx(ty, tx), ctx.global_load(b, bi + n * ty + tx));
        ctx.sync_threads();
        // `#pragma unroll` inner product over the tile.
        for k in 0..bs {
            csub += ctx.shared_load(as_idx(ty, k)) * ctx.shared_load(bs_idx(k, tx));
            ctx.count_flops(2);
        }
        ctx.sync_threads();
        ai += a_step;
        bi += b_step;
    }
    // `C[...] += Csub` — a read-modify-write of one element.
    let ci = n * bs * by + bs * bx + n * ty + tx;
    let prev = ctx.global_load(c, ci);
    ctx.global_store(c, ci, prev + csub);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cupti::{CuptiCounter, CuptiReport};

    /// Deterministic host-side fill (SplitMix64, the kernels crate's
    /// pattern) without a cross-crate dependency.
    fn filled(len: usize, seed: u64) -> Vec<f64> {
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^= z >> 31;
                (z >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
            })
            .collect()
    }

    /// Host reference: `C + k·A·B`.
    fn reference(a: &[f64], b: &[f64], c0: &[f64], n: usize, k: f64) -> Vec<f64> {
        let mut out = c0.to_vec();
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for l in 0..n {
                    acc += a[i * n + l] * b[l * n + j];
                }
                out[i * n + j] += k * acc;
            }
        }
        out
    }

    fn max_err(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
    }

    fn run_case(n: usize, bs: usize, g: usize, r: usize) -> (Vec<f64>, Vec<f64>, EmuEvents) {
        let av = filled(n * n, 1);
        let bv = filled(n * n, 2);
        let cv = filled(n * n, 3);
        let (a, b, c) =
            (GlobalMem::from_slice(&av), GlobalMem::from_slice(&bv), GlobalMem::from_slice(&cv));
        let emu = EmuDgemm::new(TiledDgemmConfig { n, bs, g, r });
        let events = emu.run(&a, &b, &c);
        let expect = reference(&av, &bv, &cv, n, (g * r) as f64);
        (c.to_vec(), expect, events)
    }

    #[test]
    fn kernel_computes_correct_product_across_bs() {
        for &(n, bs) in &[(8usize, 1usize), (8, 2), (8, 4), (8, 8), (12, 3), (16, 4)] {
            let (got, expect, _) = run_case(n, bs, 1, 1);
            assert!(max_err(&got, &expect) < 1e-10, "n={n} bs={bs}");
        }
    }

    #[test]
    fn g_and_r_accumulate_products() {
        for &(g, r) in &[(1usize, 3usize), (3, 1), (2, 2)] {
            let (got, expect, _) = run_case(8, 4, g, r);
            assert!(max_err(&got, &expect) < 1e-9, "g={g} r={r}");
        }
    }

    #[test]
    fn result_is_wave_width_invariant() {
        let run_with = |wave: usize| {
            let av = filled(64, 1);
            let bv = filled(64, 2);
            let (a, b, c) = (
                GlobalMem::from_slice(&av),
                GlobalMem::from_slice(&bv),
                GlobalMem::zeroed(64),
            );
            let emu = EmuDgemm::new(TiledDgemmConfig { n: 8, bs: 2, g: 2, r: 2 })
                .with_wave(WavePlan::fixed(wave));
            let ev = emu.run(&a, &b, &c);
            (c.to_vec(), ev)
        };
        let (serial, ev1) = run_with(1);
        for wave in [2usize, 3, 8] {
            let (out, ev) = run_with(wave);
            assert_eq!(serial, out, "wave {wave}");
            assert_eq!(ev1, ev, "wave {wave}");
        }
    }

    #[test]
    fn emulator_events_match_analytic_cupti_model_exactly() {
        for &(n, bs, g, r) in &[(8usize, 4usize, 1usize, 1usize), (8, 2, 2, 2), (12, 4, 3, 1)] {
            let (_, _, ev) = run_case(n, bs, g, r);
            let cfg = TiledDgemmConfig { n, bs, g, r };
            let rep = CuptiReport::of(&cfg);
            let check = |counter, got: u64| {
                assert_eq!(
                    rep.get(counter).true_count,
                    got as u128,
                    "{:?} for n={n} bs={bs} g={g} r={r}",
                    counter
                );
            };
            check(CuptiCounter::FlopCountDp, ev.flops);
            check(CuptiCounter::SharedLoad, ev.shared_loads);
            check(CuptiCounter::SharedStore, ev.shared_stores);
            check(CuptiCounter::GldTransactions, ev.global_loads);
            check(CuptiCounter::GstTransactions, ev.global_stores);
            check(CuptiCounter::BarrierSync, ev.barriers);
        }
    }

    #[test]
    fn event_counts_are_additive_in_workload() {
        // The additivity property, observed on real executions: a compound
        // application (G=2) counts the sum of its two base runs (G=1),
        // modulo the inter-group barrier.
        let (_, _, base) = run_case(8, 4, 1, 1);
        let (_, _, compound) = run_case(8, 4, 2, 1);
        let doubled = base.plus(base);
        assert_eq!(compound.flops, doubled.flops);
        assert_eq!(compound.shared_loads, doubled.shared_loads);
        assert_eq!(compound.global_loads, doubled.global_loads);
        assert_eq!(compound.global_stores, doubled.global_stores);
        // Barriers: one extra per block for the group separator.
        assert_eq!(compound.barriers, doubled.barriers + (8 / 4) * (8 / 4));
    }

    #[test]
    fn phase_engine_equals_legacy_engine() {
        for &(n, bs, g, r) in &[(8usize, 4usize, 1usize, 1usize), (8, 2, 2, 2), (12, 3, 1, 2)] {
            let av = filled(n * n, 4);
            let bv = filled(n * n, 5);
            let cv = filled(n * n, 6);
            let mk = || {
                (
                    GlobalMem::from_slice(&av),
                    GlobalMem::from_slice(&bv),
                    GlobalMem::from_slice(&cv),
                )
            };
            let emu = EmuDgemm::new(TiledDgemmConfig { n, bs, g, r });
            let (a1, b1, c1) = mk();
            let new_ev = emu.run(&a1, &b1, &c1);
            let (a2, b2, c2) = mk();
            let old_ev = emu.run_legacy(&a2, &b2, &c2);
            assert_eq!(c1.to_vec(), c2.to_vec(), "n={n} bs={bs} g={g} r={r}");
            assert_eq!(new_ev, old_ev, "n={n} bs={bs} g={g} r={r}");
        }
    }

    #[test]
    fn arch_bound_wave_runs_correctly() {
        let av = filled(256, 1);
        let bv = filled(256, 2);
        let (a, b, c) =
            (GlobalMem::from_slice(&av), GlobalMem::from_slice(&bv), GlobalMem::zeroed(256));
        let cfg = TiledDgemmConfig { n: 16, bs: 4, g: 1, r: 1 };
        let emu = EmuDgemm::for_arch(cfg, &GpuArch::k40c());
        emu.run(&a, &b, &c);
        let expect = reference(&av, &bv, &vec![0.0; 256], 16, 1.0);
        assert!(max_err(&c.to_vec(), &expect) < 1e-10);
    }

    #[test]
    #[should_panic(expected = "BS | N")]
    fn rejects_ragged_tiles() {
        EmuDgemm::new(TiledDgemmConfig { n: 10, bs: 4, g: 1, r: 1 });
    }
}
