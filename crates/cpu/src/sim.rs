//! The CPU execution and power model.
//!
//! One simulated run takes an application configuration (partitioning,
//! threadgroups, threads per group, BLAS flavor) and a matrix size, and
//! produces execution time, performance, the per-logical-core utilization
//! vector (and thus the `/proc/stat` view), and dynamic power.
//!
//! The generating mechanisms mirror the paper's analysis:
//!
//! * **Roofline** — aggregate throughput is the minimum of the summed
//!   per-thread compute rates and the memory-bandwidth-derived ceiling
//!   (~700 Gflop/s on the Haswell node, Fig. 4's plateau).
//! * **SMT contention** — two threads on one physical core share issue
//!   ports; each achieves ~58% of the core's single-thread rate.
//! * **Configuration idiosyncrasy** — deterministic per-(config, thread)
//!   jitter models cache/NUMA placement luck. Threads therefore finish at
//!   slightly different times; per-core utilization is the busy fraction
//!   until the last thread finishes, which is exactly how distributions
//!   with equal means and different spreads arise.
//! * **dTLB page walks** — walk intensity grows with the number of
//!   threadgroups (each group streams its own partition of B), and its
//!   power is disproportionately expensive — the Khokhriakov et al.
//!   mechanism behind weak-EP violation.

use crate::config::{BlasFlavor, CpuDgemmConfig, Partitioning, Pinning};
use crate::procstat::ProcStat;
use crate::topology::CpuTopology;
use enprop_units::{Seconds, Utilization, Watts};

/// Result of one simulated application run.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuRunEstimate {
    /// Wall-clock execution time.
    pub time: Seconds,
    /// Achieved performance, Gflop/s (`2 N³ / time`).
    pub gflops: f64,
    /// Utilization of each logical core over the run.
    pub per_core_util: Vec<Utilization>,
    /// Dynamic power drawn over the run.
    pub dynamic_power: Watts,
    /// The dTLB page-walk component of `dynamic_power`.
    pub dtlb_power: Watts,
    /// Fraction of peak memory bandwidth consumed.
    pub bandwidth_share: f64,
}

impl CpuRunEstimate {
    /// Average CPU utilization — the mean over all logical cores, the
    /// paper's Fig. 4 x-axis.
    pub fn average_utilization(&self) -> Utilization {
        Utilization::mean(&self.per_core_util)
    }

    /// Dynamic energy of the run.
    pub fn dynamic_energy(&self) -> enprop_units::Joules {
        self.dynamic_power * self.time
    }

    /// Renders the run as a pair of `/proc/stat` snapshots `duration`
    /// seconds apart, from which monitoring tools recover the utilization.
    pub fn procstat_snapshots(&self) -> (ProcStat, ProcStat) {
        let before = ProcStat::zeroed(self.per_core_util.len());
        let mut after = before.clone();
        let wall = self.time;
        for (i, u) in self.per_core_util.iter().enumerate() {
            let busy = Seconds(wall.value() * u.fraction());
            after.advance(i, busy, wall - busy);
        }
        (before, after)
    }
}

/// The simulator bound to one node description.
#[derive(Debug, Clone)]
pub struct CpuSimulator {
    topo: CpuTopology,
}

/// Fraction of a core's single-thread rate each SMT sibling achieves.
const SMT_SHARE: f64 = 0.58;
/// DGEMM arithmetic intensity at the roofline (flops per DRAM byte).
const DGEMM_FLOPS_PER_BYTE: f64 = 5.15;
/// Background utilization of idle logical cores (OS housekeeping).
const IDLE_BACKGROUND: f64 = 0.015;
/// Maximum per-thread completion jitter (relative).
const JITTER_MAX: f64 = 0.09;

impl CpuSimulator {
    /// Binds the simulator to a node.
    pub fn new(topo: CpuTopology) -> Self {
        Self { topo }
    }

    /// A simulator for the paper's Haswell node.
    pub fn haswell() -> Self {
        Self::new(CpuTopology::haswell_e5_2670v3())
    }

    /// The node description.
    pub fn topology(&self) -> &CpuTopology {
        &self.topo
    }

    /// Simulates one run of the threadgroup DGEMM multiplying two `N × N`
    /// matrices. Panics when the configuration needs more threads than the
    /// node has logical cores.
    pub fn run_dgemm(&self, cfg: &CpuDgemmConfig, n: usize) -> CpuRunEstimate {
        self.run_dgemm_scaled(cfg, n, 1.0, 1.0)
    }

    /// Simulates a run under a DVFS P-state: thread compute rates scale
    /// with frequency, core power with the `f·V²` law, both relative to
    /// `reference` (typically the nominal state the calibration assumes).
    ///
    /// ```
    /// use enprop_cpusim::dvfs::DvfsTable;
    /// use enprop_cpusim::{BlasFlavor, CpuDgemmConfig, CpuSimulator, Partitioning};
    /// use enprop_units::Hertz;
    ///
    /// let sim = CpuSimulator::haswell();
    /// let table = DvfsTable::haswell();
    /// let cfg = CpuDgemmConfig {
    ///     partitioning: Partitioning::RowWise,
    ///     pinning: enprop_cpusim::Pinning::Scatter,
    ///     groups: 1,
    ///     threads_per_group: 12,
    ///     flavor: BlasFlavor::IntelMkl,
    /// };
    /// let nominal = *table.nominal(Hertz(2.3e9));
    /// let slow = sim.run_dgemm_at(&cfg, 4096, table.min_state(), &nominal);
    /// let fast = sim.run_dgemm_at(&cfg, 4096, &nominal, &nominal);
    /// assert!(slow.time > fast.time);
    /// assert!(slow.dynamic_power < fast.dynamic_power);
    /// ```
    pub fn run_dgemm_at(
        &self,
        cfg: &CpuDgemmConfig,
        n: usize,
        state: &crate::dvfs::PState,
        reference: &crate::dvfs::PState,
    ) -> CpuRunEstimate {
        self.run_dgemm_scaled(cfg, n, state.perf_scale(reference), state.power_scale(reference))
    }

    /// The scaled execution model behind [`CpuSimulator::run_dgemm`] and
    /// [`CpuSimulator::run_dgemm_at`]: `perf_scale` multiplies per-thread
    /// compute rates (memory bandwidth is unaffected by core DVFS),
    /// `power_scale` multiplies per-core dynamic power.
    pub fn run_dgemm_scaled(
        &self,
        cfg: &CpuDgemmConfig,
        n: usize,
        perf_scale: f64,
        power_scale: f64,
    ) -> CpuRunEstimate {
        assert!(perf_scale > 0.0 && power_scale > 0.0, "scales must be positive");
        let logical = self.topo.logical_cores();
        let physical = self.topo.physical_cores();
        let threads = cfg.total_threads();
        assert!(threads >= 1, "configuration must run at least one thread");
        assert!(threads <= logical, "more threads ({threads}) than logical cores ({logical})");

        let seed = config_seed(cfg, n);
        let sockets = self.topo.sockets;
        let cores_per_socket = self.topo.cores_per_socket;

        // ---- Placement -------------------------------------------------
        // Thread i occupies physical-core *slot* i mod physical (the second
        // round lands on SMT siblings). Compact pinning maps slots to
        // socket 0 first; scatter alternates sockets, spreading bandwidth
        // demand over both memory controllers.
        let placement: Vec<(usize, usize, usize)> = (0..threads)
            .map(|i| {
                let slot = i % physical;
                let smt_round = i / physical;
                let phys = match cfg.pinning {
                    Pinning::Compact => slot,
                    Pinning::Scatter => (slot % sockets) * cores_per_socket + slot / sockets,
                };
                (phys + smt_round * physical, phys, phys / cores_per_socket)
            })
            .collect();
        // Occupancy per physical core (1 or 2 threads).
        let mut occupants = vec![0usize; physical];
        for &(_, phys, _) in &placement {
            occupants[phys] += 1;
        }

        // ---- Per-thread compute rates ----------------------------------
        let flavor_eff = match cfg.flavor {
            BlasFlavor::IntelMkl => 0.95,
            BlasFlavor::OpenBlas => 0.86,
        };
        let part_eff = match cfg.partitioning {
            Partitioning::RowWise => 1.0,
            Partitioning::Square => 1.02,
        };
        // Tiny per-thread tiles hurt kernel efficiency.
        let rows_per_thread = (n / threads).max(1) as f64;
        let tile_eff = (rows_per_thread / 64.0).powf(0.25).min(1.0);

        let mut rates = Vec::with_capacity(threads);
        for (i, &(_, phys, _)) in placement.iter().enumerate() {
            let share = if occupants[phys] == 2 { SMT_SHARE } else { 1.0 };
            let jitter = 1.0 - JITTER_MAX * hash_unit(seed, i as u64);
            rates.push(
                self.topo.flops_per_core * perf_scale * flavor_eff * part_eff * tile_eff * share
                    * jitter,
            );
        }

        // ---- Per-socket rooflines --------------------------------------
        // Each socket owns its own memory controller; the demand a socket's
        // threads generate is capped by that socket's share of bandwidth.
        let intensity = DGEMM_FLOPS_PER_BYTE * (1.0 - 0.03 * hash_unit(seed, 1_000_003));
        let socket_roofline =
            self.topo.memory_bandwidth.value() / sockets as f64 * intensity;
        let mut socket_compute = vec![0.0; sockets];
        for (&(_, _, sock), &r) in placement.iter().zip(&rates) {
            socket_compute[sock] += r;
        }
        let socket_scale: Vec<f64> = socket_compute
            .iter()
            .map(|&c| if c > 0.0 { (socket_roofline / c).min(1.0) } else { 1.0 })
            .collect();
        let achieved: f64 =
            socket_compute.iter().map(|&c| c.min(socket_roofline)).sum();
        let capacity = socket_roofline * sockets as f64;

        // ---- Time and per-thread completion -----------------------------
        let flops = 2.0 * (n as f64).powi(3);
        // Each thread owns 1/threads of the flops; its completion time
        // scales with its socket's bandwidth throttle.
        let per_thread_time: Vec<f64> = placement
            .iter()
            .zip(&rates)
            .map(|(&(_, _, sock), &r)| (flops / threads as f64) / (r * socket_scale[sock]))
            .collect();
        let wall = per_thread_time.iter().cloned().fold(0.0, f64::max);
        let gflops = flops / wall / 1.0e9;

        // ---- Utilization vector -----------------------------------------
        let mut per_core_util = vec![Utilization::new(IDLE_BACKGROUND); logical];
        for (&(log, _, _), &t) in placement.iter().zip(&per_thread_time) {
            per_core_util[log] = Utilization::new(t / wall);
        }

        // ---- Power -----------------------------------------------------
        let pm = &self.topo.power;
        let mut core_power = 0.0;
        for core in 0..physical {
            let u0 = per_core_util[core].fraction();
            let u1 = per_core_util[core + physical].fraction();
            let busy_both = u0 > 0.5 && u1 > 0.5;
            let u = u0.max(u1);
            if u > IDLE_BACKGROUND {
                let bonus = if busy_both { 1.0 + pm.smt_bonus } else { 1.0 };
                core_power += pm.core_w * power_scale * u.powf(pm.core_exponent) * bonus;
            }
        }
        let bandwidth_share = (achieved / capacity).min(1.0);
        let uncore_power = pm.uncore_w * bandwidth_share;
        let walk = walk_intensity(cfg, threads, logical);
        let dtlb_power = pm.dtlb_w * walk;

        CpuRunEstimate {
            time: Seconds(wall),
            gflops,
            per_core_util,
            dynamic_power: Watts(core_power + uncore_power + dtlb_power),
            dtlb_power: Watts(dtlb_power),
            bandwidth_share,
        }
    }
}

/// dTLB page-walk intensity ∈ [0, 1]: grows with the number of threadgroups
/// (each group touches its own partition stream of B plus private A/C
/// bands) and with the busy fraction of the node; square partitioning has
/// better page locality.
fn walk_intensity(cfg: &CpuDgemmConfig, threads: usize, logical: usize) -> f64 {
    let group_pressure = ((cfg.groups as f64 - 1.0) / 23.0).min(1.0);
    let locality = match cfg.partitioning {
        Partitioning::RowWise => 1.0,
        Partitioning::Square => 0.6,
    };
    let activity = threads as f64 / logical as f64;
    (0.15 + 0.85 * group_pressure) * locality * activity
}

/// Deterministic seed from the configuration identity.
fn config_seed(cfg: &CpuDgemmConfig, n: usize) -> u64 {
    let p = match cfg.partitioning {
        Partitioning::RowWise => 1u64,
        Partitioning::Square => 2,
    };
    let pin = match cfg.pinning {
        Pinning::Compact => 1u64,
        Pinning::Scatter => 2,
    };
    let f = match cfg.flavor {
        BlasFlavor::IntelMkl => 1u64,
        BlasFlavor::OpenBlas => 2,
    };
    splitmix(
        (cfg.groups as u64)
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add((cfg.threads_per_group as u64) << 20)
            .wrapping_add(p << 40)
            .wrapping_add(f << 44)
            .wrapping_add(pin << 48)
            .wrapping_add(n as u64),
    )
}

/// A uniform draw in [0, 1) keyed by (seed, index).
fn hash_unit(seed: u64, index: u64) -> f64 {
    (splitmix(seed ^ splitmix(index)) >> 11) as f64 / (1u64 << 53) as f64
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(p: usize, t: usize, flavor: BlasFlavor) -> CpuDgemmConfig {
        CpuDgemmConfig {
            partitioning: Partitioning::RowWise,
            pinning: Pinning::Scatter,
            groups: p,
            threads_per_group: t,
            flavor,
        }
    }

    #[test]
    fn determinism() {
        let sim = CpuSimulator::haswell();
        let a = sim.run_dgemm(&cfg(4, 6, BlasFlavor::IntelMkl), 17408);
        let b = sim.run_dgemm(&cfg(4, 6, BlasFlavor::IntelMkl), 17408);
        assert_eq!(a, b);
    }

    #[test]
    fn performance_plateaus_near_700_gflops() {
        let sim = CpuSimulator::haswell();
        let perf24 = sim.run_dgemm(&cfg(1, 24, BlasFlavor::IntelMkl), 17408).gflops;
        let perf48 = sim.run_dgemm(&cfg(1, 48, BlasFlavor::IntelMkl), 17408).gflops;
        // Memory roofline: ~700 Gflop/s, reached by 24 threads and not
        // exceeded by 48.
        assert!(perf24 > 550.0, "{perf24}");
        assert!(perf48 < 740.0, "{perf48}");
        assert!((perf48 - perf24) / perf24 < 0.15, "{perf24} → {perf48}");
    }

    #[test]
    fn performance_linear_at_low_thread_counts() {
        let sim = CpuSimulator::haswell();
        let p1 = sim.run_dgemm(&cfg(1, 1, BlasFlavor::IntelMkl), 17408).gflops;
        let p8 = sim.run_dgemm(&cfg(1, 8, BlasFlavor::IntelMkl), 17408).gflops;
        let ratio = p8 / p1;
        assert!(ratio > 6.0 && ratio < 9.0, "ratio {ratio}");
    }

    #[test]
    fn utilization_tracks_thread_count() {
        let sim = CpuSimulator::haswell();
        let low = sim.run_dgemm(&cfg(1, 6, BlasFlavor::IntelMkl), 17408);
        let high = sim.run_dgemm(&cfg(1, 48, BlasFlavor::IntelMkl), 17408);
        assert!(low.average_utilization() < high.average_utilization());
        assert!(high.average_utilization().fraction() > 0.85);
        // 6 threads of 48 → average around 12–20%.
        let f = low.average_utilization().fraction();
        assert!(f > 0.08 && f < 0.25, "{f}");
    }

    #[test]
    fn same_mean_utilization_different_power() {
        // The Fig. 4 non-functional relationship: equal total threads,
        // different group structure → (nearly) equal average utilization
        // but different dynamic power (dTLB).
        let sim = CpuSimulator::haswell();
        let few_groups = sim.run_dgemm(&cfg(1, 24, BlasFlavor::IntelMkl), 17408);
        let many_groups = sim.run_dgemm(&cfg(24, 1, BlasFlavor::IntelMkl), 17408);
        let du = (few_groups.average_utilization().fraction()
            - many_groups.average_utilization().fraction())
        .abs();
        assert!(du < 0.05, "means should be close, Δ = {du}");
        let dp = (many_groups.dynamic_power - few_groups.dynamic_power).value();
        assert!(dp > 10.0, "power gap too small: {dp} W");
    }

    #[test]
    fn dtlb_power_grows_with_groups() {
        let sim = CpuSimulator::haswell();
        let mut prev = -1.0;
        for p in [1, 4, 12, 24] {
            let r = sim.run_dgemm(&cfg(p, 48 / p.max(2) / 2 + 1, BlasFlavor::IntelMkl), 8192);
            let _ = r; // per-config thread counts differ; compare fixed t below
            let fixed = sim.run_dgemm(&cfg(p, 1, BlasFlavor::IntelMkl), 8192);
            assert!(fixed.dtlb_power.value() > prev, "p={p}");
            prev = fixed.dtlb_power.value();
        }
    }

    #[test]
    fn scatter_beats_compact_when_bandwidth_bound() {
        // 12 threads compact all land on socket 0 and saturate its memory
        // controller; scattered across both sockets they don't — same
        // thread count (same average utilization), different performance
        // and power: the paper's A/B points.
        let sim = CpuSimulator::haswell();
        let base = cfg(1, 12, BlasFlavor::IntelMkl);
        let compact = sim.run_dgemm(&CpuDgemmConfig { pinning: Pinning::Compact, ..base }, 17408);
        let scatter = sim.run_dgemm(&CpuDgemmConfig { pinning: Pinning::Scatter, ..base }, 17408);
        assert!(
            scatter.gflops > compact.gflops * 1.05,
            "scatter {} vs compact {}",
            scatter.gflops,
            compact.gflops
        );
        // Average utilization is nearly identical (stall-inclusive busy
        // fractions), so this is pure non-functionality.
        let du = (scatter.average_utilization().fraction()
            - compact.average_utilization().fraction())
        .abs();
        assert!(du < 0.03, "Δutil {du}");
        // Compact saturates its socket: bandwidth share reflects one
        // controller at its limit.
        assert!(compact.bandwidth_share <= scatter.bandwidth_share + 1e-9);
    }

    #[test]
    fn full_node_unaffected_by_pinning() {
        // With all 48 threads every core is busy either way.
        let sim = CpuSimulator::haswell();
        let base = cfg(1, 48, BlasFlavor::IntelMkl);
        let compact = sim.run_dgemm(&CpuDgemmConfig { pinning: Pinning::Compact, ..base }, 17408);
        let scatter = sim.run_dgemm(&CpuDgemmConfig { pinning: Pinning::Scatter, ..base }, 17408);
        // Only the per-configuration jitter differs (the seed includes the
        // pinning policy), so a few percent of spread remains.
        let rel = (compact.gflops - scatter.gflops).abs() / compact.gflops;
        assert!(rel < 0.05, "rel {rel}");
    }

    #[test]
    fn mkl_outperforms_openblas() {
        let sim = CpuSimulator::haswell();
        let mkl = sim.run_dgemm(&cfg(1, 12, BlasFlavor::IntelMkl), 17408).gflops;
        let ob = sim.run_dgemm(&cfg(1, 12, BlasFlavor::OpenBlas), 17408).gflops;
        assert!(mkl > ob);
    }

    #[test]
    fn procstat_roundtrip_recovers_utilization() {
        let sim = CpuSimulator::haswell();
        let run = sim.run_dgemm(&cfg(2, 12, BlasFlavor::IntelMkl), 17408);
        let (before, after) = run.procstat_snapshots();
        let recovered = after.average_utilization_since(&before);
        let direct = run.average_utilization();
        assert!(
            (recovered.fraction() - direct.fraction()).abs() < 0.01,
            "{recovered} vs {direct}"
        );
        // And the rendered text parses back.
        assert!(ProcStat::parse(&after.render()).is_some());
    }

    #[test]
    fn power_within_sane_envelope() {
        let sim = CpuSimulator::haswell();
        for t in [1, 8, 24, 48] {
            let r = sim.run_dgemm(&cfg(1, t, BlasFlavor::IntelMkl), 17408);
            let p = r.dynamic_power.value();
            assert!(p > 0.0 && p < 160.0, "t={t}: {p} W");
        }
    }

    #[test]
    #[should_panic(expected = "more threads")]
    fn oversubscription_rejected() {
        CpuSimulator::haswell().run_dgemm(&cfg(7, 7, BlasFlavor::IntelMkl), 4096);
    }
}
