//! The paper's workload grids, one helper per experiment.

/// Fig. 1: 2-D FFT sizes from 125 to 44000 (log-spaced plus the paper's
/// named endpoints and a few non-smooth sizes that exercise the MKL
/// factorization sensitivity).
pub fn fig1_sizes() -> Vec<usize> {
    let mut sizes = vec![
        125, 256, 500, 1000, 1940, 2048, 4096, 5120, 8192, 9973, 12288, 16384, 17408, 22000,
        28672, 32768, 44000,
    ];
    sizes.sort_unstable();
    sizes.dedup();
    sizes
}

/// Fig. 2: the P100 weak-EP illustration size.
pub const FIG2_N: usize = 18432;

/// Fig. 4: the CPU utilization-study size.
pub const FIG4_N: usize = 17408;

/// Fig. 6: the non-additivity sweep sizes (5120 up to beyond the
/// P100 additivity threshold of 15360).
pub fn fig6_sizes() -> Vec<usize> {
    vec![5120, 7168, 9216, 10240, 12288, 14336, 15360, 16384, 18432]
}

/// Fig. 7: the K40c Pareto-study sizes.
pub fn fig7_sizes() -> Vec<usize> {
    vec![8704, 10240]
}

/// Fig. 8: the P100 Pareto-study sizes.
pub fn fig8_sizes() -> Vec<usize> {
    vec![10240, 14336]
}

/// The "wide range of workloads" grid behind the headline
/// savings/degradation numbers (§I, §V).
pub fn headline_sizes() -> Vec<usize> {
    vec![6144, 7168, 8192, 8704, 9216, 10240, 11264, 12288, 13312, 14336, 15360, 16384, 18432]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_are_sorted_and_in_paper_ranges() {
        let f1 = fig1_sizes();
        assert_eq!(*f1.first().unwrap(), 125);
        assert_eq!(*f1.last().unwrap(), 44000);
        assert!(f1.windows(2).all(|w| w[0] < w[1]));

        assert!(fig6_sizes().windows(2).all(|w| w[0] < w[1]));
        assert_eq!(fig7_sizes(), vec![8704, 10240]);
        assert_eq!(fig8_sizes(), vec![10240, 14336]);
        assert!(headline_sizes().contains(&10240));
        assert_eq!(FIG2_N, 18432);
        assert_eq!(FIG4_N, 17408);
    }
}
