#![warn(missing_docs)]

//! Bi-objective (performance/dynamic-energy) optimization tooling.
//!
//! The paper turns energy *non*proportionality into an opportunity: since
//! different application configurations solving the same workload have
//! different (execution-time, dynamic-energy) points, one can compute the
//! **Pareto front** of that cloud and trade performance for energy. This
//! crate provides:
//!
//! * [`front`] — minimizing 2-D Pareto fronts in `O(n log n)`, general
//!   k-objective fronts, and successive non-dominated *layers* (the paper's
//!   "local Pareto fronts contain solutions that are less optimal than the
//!   solutions in the global Pareto front");
//! * [`tradeoff`] — the paper's headline statistics: *"X% dynamic energy
//!   savings while tolerating a performance degradation of Y%"*;
//! * [`epsilon`] — ε-dominance fronts for thinning/subsampled sweeps and
//!   Zitzler's coverage metric;
//! * [`incremental`] — online front maintenance and the patience-based
//!   budgeted search the paper's "expensive exhaustive sweeps" remark
//!   motivates;
//! * [`hypervolume`] — the dominated-hypervolume quality indicator;
//! * [`knee`] — knee-point selection on a front.
//!
//! All functions operate on plain `(time, energy)` pairs (both minimized)
//! and return indices into the input, so callers can keep arbitrary
//! configuration payloads alongside.

pub mod epsilon;
pub mod front;
pub mod incremental;
pub mod hypervolume;
pub mod knee;
pub mod tradeoff;

pub use epsilon::{coverage, epsilon_dominates, epsilon_front};
pub use front::{front_layers, is_non_dominated, pareto_front, pareto_front_kd, BiPoint};
pub use incremental::{adaptive_front, FrontTracker, SearchResult};
pub use hypervolume::hypervolume_2d;
pub use knee::knee_point;
pub use tradeoff::{Tradeoff, TradeoffAnalysis};
