//! A minimal vendored HTTP/1.1 stub — request parsing, fixed and chunked
//! response writing, and a small client for the load generator.
//!
//! Consistent with the `crates/compat` approach: the build environment is
//! fully offline, so instead of an HTTP framework this module implements
//! exactly the surface the daemon needs — `GET`/`POST` with
//! `Content-Length` bodies in, fixed or `Transfer-Encoding: chunked`
//! responses out, one request per connection (`Connection: close`).
//!
//! Every way a request can be broken maps to a *typed* [`HttpError`], so
//! the daemon can answer a malformed or torn request with a clean 400-class
//! response instead of panicking or hanging the accept loop. Reads honour
//! the socket's read timeout: a stalled client surfaces as
//! [`HttpError::TimedOut`], never as a wedged handler thread.

use std::io::{self, Read, Write};

/// Cap on the request line + headers, generous for hand-written clients.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Cap on a request body (sweep requests are a few hundred bytes).
pub const MAX_BODY_BYTES: usize = 64 * 1024;

/// Everything that can be wrong with an incoming request.
///
/// [`status`](HttpError::status) maps each variant to the response the
/// daemon sends; the body carries [`kind`](HttpError::kind) so clients and
/// tests can assert on the *class* of failure without string-matching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The peer closed the connection before the request was complete
    /// (torn request line, headers, or body).
    Truncated(String),
    /// The bytes arrived but do not parse as HTTP/1.1.
    Malformed(String),
    /// Head or body exceeds the fixed caps.
    TooLarge(String),
    /// The socket read timeout expired mid-request (slow-loris client).
    TimedOut,
}

impl HttpError {
    /// The status line this error answers with.
    pub fn status(&self) -> (u16, &'static str) {
        match self {
            HttpError::Truncated(_) | HttpError::Malformed(_) => (400, "Bad Request"),
            HttpError::TooLarge(_) => (413, "Payload Too Large"),
            HttpError::TimedOut => (408, "Request Timeout"),
        }
    }

    /// Machine-readable error class for JSON bodies.
    pub fn kind(&self) -> &'static str {
        match self {
            HttpError::Truncated(_) => "truncated",
            HttpError::Malformed(_) => "malformed",
            HttpError::TooLarge(_) => "too-large",
            HttpError::TimedOut => "timeout",
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Truncated(detail) => write!(f, "truncated request: {detail}"),
            HttpError::Malformed(detail) => write!(f, "malformed request: {detail}"),
            HttpError::TooLarge(detail) => write!(f, "request too large: {detail}"),
            HttpError::TimedOut => write!(f, "request timed out"),
        }
    }
}

/// A parsed request: method, path, headers, and the raw body.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET`, `POST`, … (uppercased by the peer, taken verbatim).
    pub method: String,
    /// The request target, e.g. `/sweep`.
    pub path: String,
    /// Header `(name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// The body, exactly `Content-Length` bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup (first match).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Classifies a transport error: timeouts become [`HttpError::TimedOut`],
/// anything else is a truncation (the peer is gone mid-request).
fn io_error(e: io::Error, context: &str) -> HttpError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => HttpError::TimedOut,
        _ => HttpError::Truncated(format!("{context}: {e}")),
    }
}

/// Reads and parses one HTTP/1.1 request from `stream`.
///
/// Never panics and never blocks past the stream's read timeout: every
/// broken input comes back as a typed [`HttpError`] the caller can render
/// as a 4xx response.
pub fn read_request(stream: &mut impl Read) -> Result<Request, HttpError> {
    // Accumulate until the blank line that ends the head.
    let mut buf: Vec<u8> = Vec::with_capacity(512);
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() >= MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge(format!(
                "request head exceeds {MAX_HEAD_BYTES} bytes"
            )));
        }
        let mut chunk = [0u8; 1024];
        let n = stream.read(&mut chunk).map_err(|e| io_error(e, "reading head"))?;
        if n == 0 {
            return Err(HttpError::Truncated(format!(
                "connection closed after {} byte(s), before the end of the headers",
                buf.len()
            )));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::Malformed("request head is not UTF-8".to_string()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next())
    {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && !p.is_empty() => (m, p, v),
        _ => {
            return Err(HttpError::Malformed(format!(
                "bad request line {request_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("unsupported version {version:?}")));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("bad header line {line:?}")));
        };
        headers.push((name.trim().to_string(), value.trim().to_string()));
    }

    let request = Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body: Vec::new(),
    };

    let content_length = match request.header("content-length") {
        None => 0usize,
        Some(v) => v.parse::<usize>().map_err(|_| {
            HttpError::Malformed(format!("bad Content-Length {v:?}"))
        })?,
    };
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge(format!(
            "body of {content_length} bytes exceeds {MAX_BODY_BYTES}"
        )));
    }

    // The head read may have pulled in the start of the body.
    let mut body: Vec<u8> = buf[head_end + 4..].to_vec();
    if body.len() > content_length {
        return Err(HttpError::Malformed(format!(
            "{} byte(s) past the declared Content-Length {content_length}",
            body.len()
        )));
    }
    while body.len() < content_length {
        let mut chunk = [0u8; 1024];
        let want = (content_length - body.len()).min(chunk.len());
        let n = stream
            .read(&mut chunk[..want])
            .map_err(|e| io_error(e, "reading body"))?;
        if n == 0 {
            return Err(HttpError::Truncated(format!(
                "connection closed {} byte(s) into a {content_length}-byte body",
                body.len()
            )));
        }
        body.extend_from_slice(&chunk[..n]);
    }

    Ok(Request { body, ..request })
}

/// Byte offset of the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Writes a complete fixed-length response (status + headers + body).
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    reason: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> io::Result<()> {
    let mut head = format!("HTTP/1.1 {status} {reason}\r\n");
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(&format!("Content-Length: {}\r\nConnection: close\r\n\r\n", body.len()));
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// A `Transfer-Encoding: chunked` response writer: the daemon streams one
/// chunk per completed sweep chunk, so clients see the Pareto front grow
/// while the remainder is still measuring.
pub struct ChunkedWriter<'a, W: Write> {
    stream: &'a mut W,
}

impl<'a, W: Write> ChunkedWriter<'a, W> {
    /// Writes the status line and headers and switches to chunked framing.
    pub fn start(
        stream: &'a mut W,
        status: u16,
        reason: &str,
        headers: &[(&str, &str)],
    ) -> io::Result<Self> {
        let mut head = format!("HTTP/1.1 {status} {reason}\r\n");
        for (name, value) in headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n");
        stream.write_all(head.as_bytes())?;
        Ok(Self { stream })
    }

    /// Writes one chunk (empty input is skipped — a zero-length chunk would
    /// terminate the stream).
    pub fn chunk(&mut self, data: &[u8]) -> io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.stream, "{:x}\r\n", data.len())?;
        self.stream.write_all(data)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Writes the terminating zero-length chunk.
    pub fn finish(self) -> io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

/// A parsed response, as seen by the load generator and the tests.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code from the status line.
    pub status: u16,
    /// Header `(name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// The de-chunked (or fixed-length) body.
    pub body: Vec<u8>,
}

impl Response {
    /// Case-insensitive header lookup (first match).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Reads a full response from `stream`: status line, headers, then either a
/// `Content-Length` body or de-chunked `Transfer-Encoding: chunked` data.
/// With neither framing header, reads to EOF (`Connection: close`).
pub fn read_response(stream: &mut impl Read) -> Result<Response, String> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        let mut chunk = [0u8; 1024];
        let n = stream.read(&mut chunk).map_err(|e| format!("reading response head: {e}"))?;
        if n == 0 {
            return Err(format!("connection closed {} byte(s) into the response head", buf.len()));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| "response head is not UTF-8".to_string())?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_string(), value.trim().to_string()));
        }
    }

    let mut rest: Vec<u8> = buf[head_end + 4..].to_vec();
    let mut read_all = |rest: &mut Vec<u8>| -> Result<(), String> {
        let mut chunk = [0u8; 4096];
        loop {
            let n = stream.read(&mut chunk).map_err(|e| format!("reading body: {e}"))?;
            if n == 0 {
                return Ok(());
            }
            rest.extend_from_slice(&chunk[..n]);
        }
    };

    let response = Response { status, headers, body: Vec::new() };
    let body = if response
        .header("transfer-encoding")
        .is_some_and(|v| v.eq_ignore_ascii_case("chunked"))
    {
        // Connection: close lets us read to EOF, then de-chunk in memory.
        read_all(&mut rest)?;
        dechunk(&rest)?
    } else if let Some(len) = response.header("content-length") {
        let len: usize =
            len.parse().map_err(|_| format!("bad response Content-Length {len:?}"))?;
        while rest.len() < len {
            let mut chunk = [0u8; 4096];
            let n = stream.read(&mut chunk).map_err(|e| format!("reading body: {e}"))?;
            if n == 0 {
                return Err(format!("connection closed {} byte(s) into a {len}-byte body", rest.len()));
            }
            rest.extend_from_slice(&chunk[..n]);
        }
        rest.truncate(len);
        rest
    } else {
        read_all(&mut rest)?;
        rest
    };

    Ok(Response { body, ..response })
}

/// Decodes chunked transfer framing into the payload bytes.
fn dechunk(data: &[u8]) -> Result<Vec<u8>, String> {
    let mut out = Vec::with_capacity(data.len());
    let mut pos = 0usize;
    loop {
        let line_end = data[pos..]
            .windows(2)
            .position(|w| w == b"\r\n")
            .ok_or("missing chunk-size line")?;
        let size_text = std::str::from_utf8(&data[pos..pos + line_end])
            .map_err(|_| "chunk size is not UTF-8".to_string())?;
        let size = usize::from_str_radix(size_text.trim(), 16)
            .map_err(|_| format!("bad chunk size {size_text:?}"))?;
        pos += line_end + 2;
        if size == 0 {
            return Ok(out);
        }
        if pos + size + 2 > data.len() {
            return Err(format!("chunk of {size} byte(s) overruns the stream"));
        }
        out.extend_from_slice(&data[pos..pos + size]);
        pos += size + 2; // skip the trailing CRLF
    }
}

/// One-shot client request against `addr`, used by the load generator and
/// the determinism tests.
pub fn http_request(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
) -> Result<Response, String> {
    let mut stream = std::net::TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(60)))
        .map_err(|e| format!("set timeout: {e}"))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).map_err(|e| format!("write head: {e}"))?;
    stream.write_all(body).map_err(|e| format!("write body: {e}"))?;
    read_response(&mut stream)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut &bytes[..])
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(
            b"POST /sweep HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/sweep");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn parses_a_get_without_body() {
        let req = parse(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn torn_head_is_truncated() {
        let err = parse(b"POST /sweep HTTP/1.1\r\nContent-Le").unwrap_err();
        assert!(matches!(err, HttpError::Truncated(_)), "{err:?}");
        assert_eq!(err.status().0, 400);
    }

    #[test]
    fn torn_body_is_truncated() {
        let err =
            parse(b"POST /sweep HTTP/1.1\r\nContent-Length: 50\r\n\r\nonly ten b").unwrap_err();
        assert!(matches!(err, HttpError::Truncated(_)), "{err:?}");
    }

    #[test]
    fn bad_request_line_is_malformed() {
        for raw in [
            &b"GET\r\n\r\n"[..],
            &b"GET /x\r\n\r\n"[..],
            &b"GET /x SMTP/1.0\r\n\r\n"[..],
            &b"GET /x HTTP/1.1 extra\r\n\r\n"[..],
        ] {
            let err = parse(raw).unwrap_err();
            assert!(matches!(err, HttpError::Malformed(_)), "{raw:?} -> {err:?}");
            assert_eq!(err.status().0, 400);
        }
    }

    #[test]
    fn bad_content_length_is_malformed() {
        let err = parse(b"POST /s HTTP/1.1\r\nContent-Length: nope\r\n\r\n").unwrap_err();
        assert!(matches!(err, HttpError::Malformed(_)), "{err:?}");
    }

    #[test]
    fn oversized_body_is_too_large() {
        let raw = format!("POST /s HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        let err = parse(raw.as_bytes()).unwrap_err();
        assert!(matches!(err, HttpError::TooLarge(_)), "{err:?}");
        assert_eq!(err.status().0, 413);
    }

    #[test]
    fn oversized_head_is_too_large() {
        let mut raw = b"GET /x HTTP/1.1\r\n".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 16));
        let err = parse(&raw).unwrap_err();
        assert!(matches!(err, HttpError::TooLarge(_)), "{err:?}");
    }

    #[test]
    fn chunked_response_round_trips() {
        let mut out: Vec<u8> = Vec::new();
        let mut w =
            ChunkedWriter::start(&mut out, 200, "OK", &[("X-Cache", "miss")]).unwrap();
        w.chunk(b"{\"a\":1}\n").unwrap();
        w.chunk(b"").unwrap();
        w.chunk(b"{\"b\":2}\n").unwrap();
        w.finish().unwrap();
        let resp = read_response(&mut &out[..]).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("x-cache"), Some("miss"));
        assert_eq!(resp.body, b"{\"a\":1}\n{\"b\":2}\n");
    }

    #[test]
    fn fixed_response_round_trips() {
        let mut out: Vec<u8> = Vec::new();
        write_response(&mut out, 400, "Bad Request", &[("Content-Type", "application/json")], b"{}")
            .unwrap();
        let resp = read_response(&mut &out[..]).unwrap();
        assert_eq!(resp.status, 400);
        assert_eq!(resp.body, b"{}");
    }
}
