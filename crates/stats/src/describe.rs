//! Descriptive statistics over `f64` samples.

/// A one-pass summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Unbiased (n−1) sample variance; 0 for n < 2.
    pub variance: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample. Panics on an empty slice.
    pub fn of(xs: &[f64]) -> Self {
        assert!(!xs.is_empty(), "Summary::of requires a non-empty sample");
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let variance = if n < 2 {
            0.0
        } else {
            xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        };
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &x in xs {
            min = min.min(x);
            max = max.max(x);
        }
        Self { n, mean, variance, min, max }
    }

    /// Sample standard deviation.
    pub fn sd(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Standard error of the mean, `s / √n`.
    pub fn sem(&self) -> f64 {
        self.sd() / (self.n as f64).sqrt()
    }

    /// Coefficient of variation `s / |mean|`; infinite for a zero mean with
    /// nonzero spread, 0 for a constant-zero sample.
    ///
    /// Weak EP says dynamic energy is *constant* across configurations; its
    /// violation is quantified by the CV of per-configuration energies.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            if self.variance == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.sd() / self.mean.abs()
        }
    }

    /// Relative range `(max − min) / min`, the worst-case spread used for
    /// "X% higher energy than the minimum" statements.
    pub fn rel_range(&self) -> f64 {
        if self.min == 0.0 {
            f64::INFINITY
        } else {
            (self.max - self.min) / self.min
        }
    }
}

/// The `q`-th quantile (`0 ≤ q ≤ 1`) by linear interpolation on the sorted
/// sample. Panics on an empty slice.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile requires a non-empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile requires q in [0,1], got {q}");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Median, i.e. the 0.5 quantile.
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample variance with n−1 = 7: Σ(x−5)² = 32 → 32/7.
        assert!((s.variance - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn single_observation() {
        let s = Summary::of(&[3.5]);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.sd(), 0.0);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn cv_and_rel_range() {
        let s = Summary::of(&[10.0, 12.0]);
        assert!((s.rel_range() - 0.2).abs() < 1e-12);
        assert!(s.cv() > 0.0);
        let z = Summary::of(&[0.0, 0.0]);
        assert_eq!(z.cv(), 0.0);
    }

    #[test]
    fn quantiles() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((median(&xs) - 2.5).abs() < 1e-12);
        assert!((quantile(&xs, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn sem_shrinks_with_n() {
        let small = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        let big_data: Vec<f64> = (0..100).map(|i| 1.0 + (i % 4) as f64).collect();
        let big = Summary::of(&big_data);
        assert!(big.sem() < small.sem());
    }
}
