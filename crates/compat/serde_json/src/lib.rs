//! Offline stand-in for `serde_json`, speaking the stub `serde::Value`
//! tree directly. Floats are written with Rust's shortest round-trip
//! `Display`, so serialize → deserialize reproduces every finite `f64`
//! bit-for-bit — the property the workspace's round-trip tests rely on.

use serde::{DeserializeOwned, Serialize, Value};

pub use serde::Error;

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to human-readable JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: DeserializeOwned>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    T::deserialize(&value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(value: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Num(x) => {
            if x.is_finite() {
                // `Display` for f64 is shortest-round-trip; force a `.0`
                // only when it prints like an integer so the value stays
                // typed as a float on re-read of heterogeneous data.
                let text = x.to_string();
                out.push_str(&text);
            } else {
                // Match serde_json: non-finite floats become null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Parses JSON text into a [`Value`] tree.
pub fn parse(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::custom(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => *pos += 1,
            _ => break,
        }
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error::custom("unexpected end of input")),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    other => {
                        return Err(Error::custom(format!(
                            "expected `,` or `]` in array, found {other:?}"
                        )))
                    }
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(Error::custom("expected `:` after object key"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    other => {
                        return Err(Error::custom(format!(
                            "expected `,` or `}}` in object, found {other:?}"
                        )))
                    }
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(Error::custom(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(Error::custom("expected string"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::custom("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| Error::custom("invalid \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error::custom("invalid \\u escape"))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::custom("invalid \\u code point"))?,
                        );
                        *pos += 4;
                    }
                    other => {
                        return Err(Error::custom(format!("invalid escape {other:?}")));
                    }
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input came from &str, so
                // boundaries are valid).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    while let Some(b) = bytes.get(*pos) {
        match b {
            b'-' | b'+' | b'0'..=b'9' | b'.' | b'e' | b'E' => *pos += 1,
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| Error::custom("invalid number"))?;
    if text.is_empty() {
        return Err(Error::custom(format!("unexpected character at byte {start}")));
    }
    let is_float = text.contains(['.', 'e', 'E']);
    if !is_float {
        if let Some(stripped) = text.strip_prefix('-') {
            if let Ok(n) = stripped.parse::<u128>() {
                return Ok(Value::Int(-(n as i128)));
            }
        } else if let Ok(n) = text.parse::<u128>() {
            return Ok(Value::UInt(n));
        }
    }
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| Error::custom(format!("invalid number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_roundtrip_is_exact() {
        for &x in &[0.1, 1.0 / 3.0, 6.02214076e23, -0.0, 123_456_789.123_456_79] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert!(back == x || (back == 0.0 && x == 0.0), "{x} -> {json} -> {back}");
        }
    }

    #[test]
    fn nested_structures_roundtrip() {
        let v = Value::Object(vec![
            ("a".into(), Value::Array(vec![Value::Int(-3), Value::UInt(u64::MAX as u128 + 7)])),
            ("s".into(), Value::Str("quote \" slash \\ tab \t".into())),
            ("n".into(), Value::Null),
        ]);
        let compact = {
            let mut out = String::new();
            write_value(&v, &mut out, None, 0);
            out
        };
        assert_eq!(parse(&compact).unwrap(), v);
        let pretty = {
            let mut out = String::new();
            write_value(&v, &mut out, Some(2), 0);
            out
        };
        assert_eq!(parse(&pretty).unwrap(), v);
    }
}
