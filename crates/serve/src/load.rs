//! Load generator: N concurrent clients hammering a daemon with a mixed
//! hot/cold key stream, reporting throughput, cache behaviour, and the
//! byte-identity of responses for repeated keys.
//!
//! Every client issues `requests_per_client` POSTs. Most draw from a small
//! pool of *hot* keys (seeds `seed_base..seed_base + hot_keys`), which
//! should coalesce or hit in the cache; every fourth request derives a
//! *cold* key unique to `(client, request)`, which must miss. The report
//! cross-checks each hot key's bodies: a daemon that is correct serves
//! every client the same bytes no matter which of them triggered the
//! computation.

use crate::http::http_request;
use crate::server::SweepRequest;
use serde::Serialize;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Mutex;
use std::time::Instant;

/// Load-run parameters.
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests issued by each client.
    pub requests_per_client: usize,
    /// Distinct hot seeds shared by all clients.
    pub hot_keys: usize,
    /// First hot seed (cold seeds are derived far away from this range).
    pub seed_base: u64,
    /// Architecture for every request.
    pub arch: String,
    /// Matrix dimension for every request.
    pub n: usize,
    /// Products for every request.
    pub products: usize,
    /// Streaming chunk size for every request.
    pub chunk: usize,
}

impl Default for LoadOptions {
    fn default() -> Self {
        Self {
            clients: 8,
            requests_per_client: 6,
            hot_keys: 3,
            seed_base: 42,
            arch: "k40c".to_string(),
            n: 512,
            products: 4,
            chunk: 16,
        }
    }
}

/// What a load run observed.
#[derive(Debug, Clone, Serialize)]
pub struct LoadReport {
    /// Total requests issued.
    pub requests: usize,
    /// Requests that returned 200 with a well-formed body.
    pub ok: usize,
    /// Responses the daemon marked `X-Cache: hit`.
    pub hits: usize,
    /// Responses the daemon marked `X-Cache: miss`.
    pub misses: usize,
    /// Wall-clock duration of the run, seconds.
    pub secs: f64,
    /// `requests / secs`.
    pub requests_per_sec: f64,
    /// `hits / (hits + misses)`.
    pub cache_hit_rate: f64,
    /// Whether every response for a given hot key was byte-identical
    /// across all clients (the serving-correctness property).
    pub hot_identical: bool,
    /// Transport or status errors, at most one message kept per kind.
    pub errors: Vec<String>,
}

/// Runs the mixed hot/cold load against `addr` and summarizes.
pub fn run_load(addr: SocketAddr, options: &LoadOptions) -> LoadReport {
    struct Tally {
        ok: usize,
        hits: usize,
        misses: usize,
        bodies_by_seed: HashMap<u64, Vec<Vec<u8>>>,
        errors: Vec<String>,
    }
    let tally = Mutex::new(Tally {
        ok: 0,
        hits: 0,
        misses: 0,
        bodies_by_seed: HashMap::new(),
        errors: Vec::new(),
    });

    let started = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..options.clients {
            let tally = &tally;
            let options = &options;
            scope.spawn(move || {
                for r in 0..options.requests_per_client {
                    let cold = r % 4 == 3;
                    let seed = if cold {
                        // Unique per (client, request): a guaranteed miss,
                        // placed far from the hot range.
                        options.seed_base + 100_000 + (client as u64) * 1_000 + r as u64
                    } else {
                        options.seed_base
                            + ((client + r) % options.hot_keys.max(1)) as u64
                    };
                    let request = SweepRequest {
                        arch: options.arch.clone(),
                        n: options.n,
                        products: options.products,
                        seed,
                        chunk: options.chunk,
                        no_cache: false,
                    };
                    let result =
                        http_request(addr, "POST", "/sweep", request.to_json().as_bytes());
                    let mut t = tally.lock().unwrap();
                    match result {
                        Ok(response) if response.status == 200 => {
                            t.ok += 1;
                            match response.header("X-Cache") {
                                Some("hit") => t.hits += 1,
                                Some("miss") => t.misses += 1,
                                other => t.errors.push(format!(
                                    "unexpected X-Cache header: {other:?}"
                                )),
                            }
                            if !cold {
                                t.bodies_by_seed
                                    .entry(seed)
                                    .or_default()
                                    .push(response.body);
                            }
                        }
                        Ok(response) => t.errors.push(format!(
                            "status {} from /sweep: {}",
                            response.status,
                            String::from_utf8_lossy(&response.body)
                        )),
                        Err(e) => t.errors.push(e),
                    }
                }
            });
        }
    });
    let secs = started.elapsed().as_secs_f64();

    let tally = tally.into_inner().unwrap();
    let hot_identical = tally
        .bodies_by_seed
        .values()
        .all(|bodies| bodies.windows(2).all(|w| w[0] == w[1]));
    let requests = options.clients * options.requests_per_client;
    let lookups = tally.hits + tally.misses;
    let mut errors = tally.errors;
    errors.truncate(8);
    LoadReport {
        requests,
        ok: tally.ok,
        hits: tally.hits,
        misses: tally.misses,
        secs,
        requests_per_sec: if secs > 0.0 { requests as f64 / secs } else { 0.0 },
        cache_hit_rate: if lookups > 0 {
            tally.hits as f64 / lookups as f64
        } else {
            0.0
        },
        hot_identical,
        errors,
    }
}
