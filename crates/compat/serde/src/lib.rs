//! Offline stand-in for the `serde` facade.
//!
//! The build environment has no access to crates.io, so the real `serde`
//! cannot be vendored through the registry. This crate reproduces exactly
//! the surface the workspace consumes: `derive(Serialize, Deserialize)` on
//! plain data structs/enums, a self-describing [`Value`] tree as the
//! intermediate representation, and the `de::DeserializeOwned` bound used
//! by the JSON round-trip tests. It is not wire-compatible with upstream
//! serde's `Serializer`/`Deserializer` pair — the only format in this
//! workspace is JSON via the sibling `serde_json` stub, which speaks
//! [`Value`] directly.

use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Error raised by deserialization (and, for API parity, serialization).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Builds an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A self-describing data tree: the intermediate representation between
/// typed values and the JSON wire format.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also `Option::None`).
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i128),
    /// An unsigned integer (kept separate so `u128` counts round-trip).
    UInt(u128),
    /// A floating-point number.
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map with string keys (field order is preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The human-readable kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::UInt(_) => "integer",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Looks up a field of an object.
    pub fn field(&self, key: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::custom(format!("missing field `{key}`"))),
            other => {
                Err(Error::custom(format!("expected object with field `{key}`, found {}", other.kind())))
            }
        }
    }

    /// Indexes into an array.
    pub fn element(&self, index: usize) -> Result<&Value, Error> {
        match self {
            Value::Array(items) => items
                .get(index)
                .ok_or_else(|| Error::custom(format!("array too short: no element {index}"))),
            other => Err(Error::custom(format!("expected array, found {}", other.kind()))),
        }
    }

    /// Views the value as an array.
    pub fn as_array(&self) -> Result<&[Value], Error> {
        match self {
            Value::Array(items) => Ok(items),
            other => Err(Error::custom(format!("expected array, found {}", other.kind()))),
        }
    }

    /// Views the value as a string.
    pub fn as_str(&self) -> Result<&str, Error> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(Error::custom(format!("expected string, found {}", other.kind()))),
        }
    }
}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into the self-describing representation.
    fn serialize(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self`, reporting shape mismatches as [`Error`]s.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

/// Marker mirroring `serde::de::DeserializeOwned`: every `Deserialize`
/// in this stub already borrows nothing from the input.
pub trait DeserializeOwned: Deserialize {}

impl<T: Deserialize> DeserializeOwned for T {}

/// Mirror of serde's `de` module path.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned, Error};
}

/// Mirror of serde's `ser` module path.
pub mod ser {
    pub use crate::{Error, Serialize};
}

macro_rules! signed_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let wide: i128 = match value {
                    Value::Int(n) => *n,
                    Value::UInt(n) => (*n)
                        .try_into()
                        .map_err(|_| Error::custom("integer out of range"))?,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, found {}",
                            other.kind()
                        )))
                    }
                };
                wide.try_into().map_err(|_| {
                    Error::custom(format!("{wide} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

signed_impls!(i8, i16, i32, i64, i128, isize);

macro_rules! unsigned_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::UInt(*self as u128)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let wide: u128 = match value {
                    Value::UInt(n) => *n,
                    Value::Int(n) => (*n)
                        .try_into()
                        .map_err(|_| Error::custom("negative value for unsigned field"))?,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, found {}",
                            other.kind()
                        )))
                    }
                };
                wide.try_into().map_err(|_| {
                    Error::custom(format!("{wide} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

unsigned_impls!(u8, u16, u32, u64, u128, usize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Num(x) => Ok(*x as $t),
                    Value::Int(n) => Ok(*n as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    other => Err(Error::custom(format!(
                        "expected number, found {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value.as_str().map(str::to_owned)
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(inner) => inner.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value.as_array()?.iter().map(T::deserialize).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                Ok(($($name::deserialize(value.element($idx)?)?,)+))
            }
        }
    )*};
}

tuple_impls! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}
