//! CPU topology and power-model description (the paper's Table I CPU rows).

use enprop_units::{BytesPerSecond, Hertz, MemBytes};
use serde::{Deserialize, Serialize};

/// Static description of a multicore CPU node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuTopology {
    /// Marketing name.
    pub name: String,
    /// Number of sockets.
    pub sockets: usize,
    /// Physical cores per socket.
    pub cores_per_socket: usize,
    /// Hardware threads per physical core (2 = hyper-threading).
    pub smt: usize,
    /// Nominal core clock.
    pub clock: Hertz,
    /// Peak double-precision flops of one physical core (AVX2 FMA width).
    pub flops_per_core: f64,
    /// Aggregate memory bandwidth of the node.
    pub memory_bandwidth: BytesPerSecond,
    /// L1 data cache per core.
    pub l1d: MemBytes,
    /// L1 instruction cache per core.
    pub l1i: MemBytes,
    /// L2 cache per core.
    pub l2: MemBytes,
    /// L3 cache per socket.
    pub l3: MemBytes,
    /// Total main memory.
    pub main_memory: MemBytes,
    /// BLAS library versions, for the Table I rendering.
    pub blas_versions: String,
    /// Calibrated dynamic-power model.
    pub power: CpuPowerModel,
}

/// Calibrated constants of the node's dynamic-power model
///
/// ```text
/// P = Σ_cores core_w · u_i^core_exponent · (1 + smt_bonus·[both threads busy])
///   + uncore_w · (achieved bandwidth / peak)
///   + dtlb_w  · walk_intensity(configuration)
/// ```
///
/// The per-core term is the simple EP model (`P = a·U`) the literature
/// fits; the uncore and dTLB terms are what break weak EP at the node
/// level. The dTLB term follows Khokhriakov et al.: page-walk activity is
/// disproportionately energy-expensive and varies with the application
/// configuration even at equal utilization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuPowerModel {
    /// Dynamic power of one fully-utilized physical core.
    pub core_w: f64,
    /// Exponent on per-core utilization (1.0 = the simple EP model).
    pub core_exponent: f64,
    /// Extra fraction of core power when both SMT threads are busy.
    pub smt_bonus: f64,
    /// Uncore (memory controller + interconnect) power at peak bandwidth.
    pub uncore_w: f64,
    /// Power of dTLB page-walk activity at maximum walk intensity.
    pub dtlb_w: f64,
}

impl CpuTopology {
    /// Total physical cores.
    pub fn physical_cores(&self) -> usize {
        self.sockets * self.cores_per_socket
    }

    /// Total logical cores (`physical × smt`).
    pub fn logical_cores(&self) -> usize {
        self.physical_cores() * self.smt
    }

    /// Peak double-precision throughput of the node, flop/s.
    pub fn peak_flops(&self) -> f64 {
        self.physical_cores() as f64 * self.flops_per_core
    }

    /// The dual-socket Intel Haswell E5-2670 v3 node of Table I, with
    /// hyper-threading enabled (48 logical cores).
    pub fn haswell_e5_2670v3() -> Self {
        Self {
            name: "Intel Haswell E5-2670V3".into(),
            sockets: 2,
            cores_per_socket: 12,
            smt: 2,
            // Table I lists the governor-scaled 1200.402 MHz reading; DGEMM
            // runs near the 2.3 GHz nominal clock which the flop rate uses.
            clock: Hertz::from_mhz(1200.402),
            // 2.3 GHz × 16 DP flops/cycle (2× 4-wide FMA).
            flops_per_core: 2.3e9 * 16.0,
            memory_bandwidth: BytesPerSecond(136.0e9), // 2 sockets × 68 GB/s
            l1d: MemBytes::from_kib(32.0),
            l1i: MemBytes::from_kib(32.0),
            l2: MemBytes::from_kib(256.0),
            l3: MemBytes::from_kib(30720.0),
            main_memory: MemBytes::from_gib(64.0),
            blas_versions: "(Intel MKL, OpenBLAS) = (2020.0.4, 0.2.19)".into(),
            power: CpuPowerModel {
                core_w: 2.6,
                core_exponent: 1.0,
                smt_bonus: 0.18,
                uncore_w: 28.0,
                dtlb_w: 32.0,
            },
        }
    }

    /// Renders this node's rows of Table I.
    pub fn table_rows(&self) -> Vec<(String, String)> {
        vec![
            ("No. of cores per socket".into(), format!("{}", self.cores_per_socket)),
            ("Socket(s)".into(), format!("{}", self.sockets)),
            ("CPU MHz".into(), format!("{:.3}", self.clock.mhz())),
            (
                "L1d cache, L1i cache".into(),
                format!(
                    "{:.0} KB, {:.0} KB",
                    self.l1d.value() / 1024.0,
                    self.l1i.value() / 1024.0
                ),
            ),
            (
                "L2 cache, L3 cache".into(),
                format!("{:.0} KB, {:.0} KB", self.l2.value() / 1024.0, self.l3.value() / 1024.0),
            ),
            (
                "Total main memory".into(),
                format!("{:.0} GB DDR4", self.main_memory.value() / (1 << 30) as f64),
            ),
            ("(Intel MKL, OpenBLAS) versions".into(), self.blas_versions.clone()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haswell_counts() {
        let t = CpuTopology::haswell_e5_2670v3();
        assert_eq!(t.physical_cores(), 24);
        assert_eq!(t.logical_cores(), 48);
    }

    #[test]
    fn peak_flops_near_published() {
        // 24 cores × 36.8 Gflop/s ≈ 883 Gflop/s.
        let t = CpuTopology::haswell_e5_2670v3();
        assert!((t.peak_flops() - 883.2e9).abs() / 883.2e9 < 0.01);
    }

    #[test]
    fn table_rows_match_paper() {
        let rows = CpuTopology::haswell_e5_2670v3().table_rows();
        assert_eq!(rows[0].1, "12");
        assert_eq!(rows[1].1, "2");
        assert_eq!(rows[2].1, "1200.402");
        assert_eq!(rows[3].1, "32 KB, 32 KB");
        assert_eq!(rows[4].1, "256 KB, 30720 KB");
        assert_eq!(rows[5].1, "64 GB DDR4");
    }
}
