//! The simulated WattsUp Pro meter.
//!
//! The physical device reports whole-node power once per second with 0.1 W
//! display resolution and a small sensor error. The simulation reproduces
//! those characteristics so that downstream statistics face realistic
//! measurement conditions.

use crate::source::PowerSource;
use crate::trace::PowerTrace;
use enprop_units::{Seconds, Watts};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Characteristics of the meter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeterSpec {
    /// Samples per second (WattsUp Pro: 1 Hz).
    pub sample_hz: f64,
    /// Reading quantization step in watts (WattsUp Pro: 0.1 W).
    pub resolution_w: f64,
    /// Gaussian sensor noise standard deviation, in watts.
    pub noise_sd_w: f64,
    /// Multiplicative calibration error (1.0 = perfectly calibrated).
    pub gain: f64,
}

impl Default for MeterSpec {
    /// WattsUp-Pro-like defaults: 1 Hz, 0.1 W steps, 0.5 W noise, unit gain.
    fn default() -> Self {
        Self { sample_hz: 1.0, resolution_w: 0.1, noise_sd_w: 0.5, gain: 1.0 }
    }
}

/// A deterministic, seedable simulation of a WattsUp Pro watching one node.
///
/// The node is characterized by its idle power (drawn even when no
/// application runs); applications are [`PowerSource`]s whose draw adds on
/// top of the idle floor.
#[derive(Debug)]
pub struct SimulatedWattsUp {
    spec: MeterSpec,
    idle_power: Watts,
    rng: StdRng,
}

impl SimulatedWattsUp {
    /// Creates a meter for a node with the given idle floor.
    pub fn new(spec: MeterSpec, idle_power: Watts, seed: u64) -> Self {
        assert!(spec.sample_hz > 0.0, "sample rate must be positive");
        assert!(spec.resolution_w >= 0.0, "resolution must be non-negative");
        assert!(idle_power.value() >= 0.0, "idle power must be non-negative");
        Self { spec, idle_power, rng: StdRng::seed_from_u64(seed) }
    }

    /// The node's idle floor as configured.
    pub fn idle_power(&self) -> Watts {
        self.idle_power
    }

    /// The meter characteristics.
    pub fn spec(&self) -> MeterSpec {
        self.spec
    }

    /// Resets the noise stream so the meter behaves exactly as if freshly
    /// constructed with `seed`. Parallel sweep workers use this to give each
    /// configuration its own deterministic noise stream independent of how
    /// many configurations the worker measured before it.
    pub fn reseed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
    }

    /// Records the node idling for `window` — the baseline-capture phase of
    /// an HCLWATTSUP session.
    pub fn record_idle(&mut self, window: Seconds) -> PowerTrace {
        struct Nothing(Seconds);
        impl PowerSource for Nothing {
            fn power_at(&self, _t: Seconds) -> Watts {
                Watts::ZERO
            }
            fn duration(&self) -> Seconds {
                self.0
            }
        }
        self.record(&Nothing(window))
    }

    /// Records the node running `app`, sampling idle + app power at the
    /// meter's rate from t = 0 through the app's completion (final partial
    /// interval included by sampling at the exact end time).
    pub fn record(&mut self, app: &dyn PowerSource) -> PowerTrace {
        let period = 1.0 / self.spec.sample_hz;
        let d = app.duration().value();
        assert!(d > 0.0, "application must run for positive time");
        let mut trace = PowerTrace::new();
        let mut t = 0.0;
        while t < d {
            let p = self.read_at(app, Seconds(t));
            trace.push(Seconds(t), p);
            t += period;
        }
        let p = self.read_at(app, Seconds(d));
        trace.push(Seconds(d), p);
        trace
    }

    /// One noisy, quantized reading of idle + app power.
    fn read_at(&mut self, app: &dyn PowerSource, t: Seconds) -> Watts {
        let truth = (self.idle_power + app.power_at(t)).value();
        let noisy = truth * self.spec.gain + self.gaussian() * self.spec.noise_sd_w;
        let q = if self.spec.resolution_w > 0.0 {
            (noisy / self.spec.resolution_w).round() * self.spec.resolution_w
        } else {
            noisy
        };
        Watts(q.max(0.0))
    }

    /// Box–Muller standard normal draw.
    fn gaussian(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(1e-12..1.0);
        let u2: f64 = self.rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::ConstantLoad;

    fn quiet_spec() -> MeterSpec {
        MeterSpec { noise_sd_w: 0.0, ..MeterSpec::default() }
    }

    #[test]
    fn noiseless_meter_reads_truth() {
        let mut m = SimulatedWattsUp::new(quiet_spec(), Watts(90.0), 1);
        let app = ConstantLoad::new(Watts(110.0), Seconds(10.0));
        let trace = m.record(&app);
        // 1 Hz over 10 s → samples at 0..=10.
        assert_eq!(trace.len(), 11);
        for s in trace.samples() {
            assert!((s.power.value() - 200.0).abs() < 1e-9, "{:?}", s);
        }
        assert!((trace.energy().value() - 2000.0).abs() < 1e-6);
    }

    #[test]
    fn idle_recording_reads_floor() {
        let mut m = SimulatedWattsUp::new(quiet_spec(), Watts(90.0), 1);
        let trace = m.record_idle(Seconds(5.0));
        assert!((trace.mean_power().unwrap().value() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn quantization_rounds_to_resolution() {
        let spec = MeterSpec { noise_sd_w: 0.0, resolution_w: 0.5, ..MeterSpec::default() };
        let mut m = SimulatedWattsUp::new(spec, Watts(0.0), 1);
        let app = ConstantLoad::new(Watts(100.26), Seconds(2.0));
        let trace = m.record(&app);
        for s in trace.samples() {
            let rem = (s.power.value() / 0.5).fract();
            assert!(rem.abs() < 1e-9 || (rem - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let app = ConstantLoad::new(Watts(100.0), Seconds(30.0));
        let t1 = SimulatedWattsUp::new(MeterSpec::default(), Watts(90.0), 7).record(&app);
        let t2 = SimulatedWattsUp::new(MeterSpec::default(), Watts(90.0), 7).record(&app);
        let t3 = SimulatedWattsUp::new(MeterSpec::default(), Watts(90.0), 8).record(&app);
        assert_eq!(t1, t2);
        assert_ne!(t1, t3);
    }

    #[test]
    fn reseed_equals_fresh_construction() {
        let app = ConstantLoad::new(Watts(100.0), Seconds(30.0));
        let mut used = SimulatedWattsUp::new(MeterSpec::default(), Watts(90.0), 7);
        used.record(&app); // advance the noise stream
        used.reseed(21);
        let fresh = SimulatedWattsUp::new(MeterSpec::default(), Watts(90.0), 21).record(&app);
        assert_eq!(used.record(&app), fresh);
    }

    #[test]
    fn noisy_mean_converges_to_truth() {
        let app = ConstantLoad::new(Watts(100.0), Seconds(3000.0));
        let mut m = SimulatedWattsUp::new(MeterSpec::default(), Watts(90.0), 42);
        let mean = m.record(&app).mean_power().unwrap().value();
        assert!((mean - 190.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn gain_error_scales_readings() {
        let spec = MeterSpec { noise_sd_w: 0.0, gain: 1.05, resolution_w: 0.0, ..quiet_spec() };
        let mut m = SimulatedWattsUp::new(spec, Watts(100.0), 1);
        let app = ConstantLoad::new(Watts(100.0), Seconds(2.0));
        let trace = m.record(&app);
        assert!((trace.samples()[0].power.value() - 210.0).abs() < 1e-9);
    }
}
