//! Manual perf probe (ignored by default): packed vs unpacked DGEMM
//! GFLOPS across sizes. Run with
//! `cargo test --release -p enprop-kernels --test perf_probe -- --ignored --nocapture`.

use enprop_kernels::{dgemm_blocked, dgemm_blocked_unpacked};
use std::time::Instant;

#[test]
#[ignore]
fn probe_packed_vs_unpacked() {
    for &n in &[256usize, 384, 512] {
        for &bs in &[32usize, 64, 128] {
            let a: Vec<f64> = (0..n * n).map(|i| ((i % 11) as f64 - 5.0) * 0.25).collect();
            let b: Vec<f64> = (0..n * n).map(|i| ((i % 13) as f64 - 6.0) * 0.125).collect();
            let c0: Vec<f64> = (0..n * n).map(|i| ((i % 7) as f64 - 3.0) * 0.5).collect();
            let flops = 2.0 * (n as f64).powi(3);

            let mut up = f64::INFINITY;
            for _ in 0..3 {
                let mut c = c0.clone();
                let t = Instant::now();
                dgemm_blocked_unpacked(1.25, &a, &b, 0.75, &mut c, n, n, n, bs);
                up = up.min(t.elapsed().as_secs_f64());
            }
            let mut pk = f64::INFINITY;
            for _ in 0..3 {
                let mut c = c0.clone();
                let t = Instant::now();
                dgemm_blocked(1.25, &a, &b, 0.75, &mut c, n, n, n, bs);
                pk = pk.min(t.elapsed().as_secs_f64());
            }
            println!(
                "n={n} bs={bs}: unpacked {:.2} GFLOPS, packed {:.2} GFLOPS, speedup {:.2}x",
                flops / up / 1e9,
                flops / pk / 1e9,
                up / pk
            );
        }
    }
}
