//! Emulated device memories and event counters.
//!
//! Both global and shared memory are plain `f64` buffers behind an
//! [`UnsafeCell`], accessed without per-cell atomicity. That is sound for
//! the same reason CUDA kernels are: the programming model this emulator
//! enforces already forbids data races. Within a block, threads only
//! exchange data across `__syncthreads` boundaries (the phase interpreter
//! runs the threads of a block sequentially; the legacy OS-thread engine
//! separates conflicting accesses with a real [`std::sync::Barrier`],
//! whose `wait` establishes happens-before). Across blocks, a kernel may
//! only write cells no other block touches during the launch — the CUDA
//! contract the kernels under study (tiled DGEMM, row FFT) obey by
//! construction. Concurrent accesses are therefore always to disjoint
//! cells, which Rust permits for raw-pointer access: no overlapping
//! unsynchronized access, no data race.
//!
//! The previous revision stored every value as a bit pattern in an
//! `AtomicU64` and bumped an atomic event counter on every access; the
//! per-block counters ([`BlockCounters`]) flushed once per block into
//! [`EventCounters`] replace that last hot-path atomic traffic.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// A flat array of `f64` cells shared by concurrently executing blocks.
///
/// # Concurrency contract
///
/// Cells may be read by any number of threads concurrently; a cell that
/// any thread writes during a launch must not be accessed by a thread of
/// another block, and within a block conflicting accesses must be
/// separated by a barrier (phase boundary). This is exactly the CUDA
/// global-memory discipline; the emulator's kernels uphold it and the
/// bounds of every access are checked.
#[derive(Debug)]
struct Cells {
    cells: Box<[UnsafeCell<f64>]>,
    /// Memory kind for diagnostics ("global" / "shared"): an
    /// out-of-bounds access must name what it overran, not just where.
    kind: &'static str,
}

// SAFETY: see the concurrency contract above — all concurrent access is
// to disjoint cells (enforced by kernel structure, not the type system),
// and disjoint plain accesses are race-free.
unsafe impl Sync for Cells {}

impl Cells {
    fn zeroed(len: usize, kind: &'static str) -> Self {
        Self { cells: (0..len).map(|_| UnsafeCell::new(0.0)).collect(), kind }
    }

    fn from_slice(data: &[f64], kind: &'static str) -> Self {
        Self { cells: data.iter().map(|&v| UnsafeCell::new(v)).collect(), kind }
    }

    fn len(&self) -> usize {
        self.cells.len()
    }

    /// A launch-stable identity for this allocation (its base address).
    fn id(&self) -> BufId {
        BufId(self.cells.as_ptr() as usize)
    }

    /// Panics with an attributable diagnostic: memory kind, index, length.
    #[cold]
    #[inline(never)]
    fn oob(&self, op: &str, idx: usize) -> ! {
        panic!(
            "{} memory {op} out of bounds: index {idx} >= len {}",
            self.kind,
            self.cells.len()
        )
    }

    #[inline]
    fn load(&self, idx: usize) -> f64 {
        if idx >= self.cells.len() {
            self.oob("load", idx);
        }
        // SAFETY: bounds-checked above; concurrent accesses are disjoint
        // per the type's contract.
        unsafe { *self.cells[idx].get() }
    }

    #[inline]
    fn store(&self, idx: usize, v: f64) {
        if idx >= self.cells.len() {
            self.oob("store", idx);
        }
        // SAFETY: as for `load`.
        unsafe { *self.cells[idx].get() = v }
    }

    fn to_vec(&self) -> Vec<f64> {
        // SAFETY: callers only snapshot between launches (host side).
        self.cells.iter().map(|c| unsafe { *c.get() }).collect()
    }

    /// Bounds-checked base pointer of the `len` cells starting at `idx`,
    /// for vectorized bulk access. `UnsafeCell<f64>` is layout-compatible
    /// with `f64`, so consecutive cells form a contiguous `f64` run.
    ///
    /// The caller may read or write through the pointer only under the
    /// type's concurrency contract (disjoint cells across concurrent
    /// blocks), and only within the checked range.
    #[inline]
    fn range_ptr(&self, op: &str, idx: usize, len: usize) -> *mut f64 {
        let end = idx.saturating_add(len);
        if end > self.cells.len() {
            self.oob(op, end.max(1) - 1);
        }
        if len == 0 {
            return std::ptr::NonNull::<f64>::dangling().as_ptr();
        }
        self.cells[idx].get()
    }
}

/// A launch-stable identity of one [`GlobalMem`] allocation — how an
/// access observer ([`crate::emulator::AccessSink`]) tells apart the
/// distinct global buffers (A, B, C, a signal…) a kernel touches. Derived
/// from the allocation's base address, so it is unique among the live
/// allocations of a launch but *not* stable across processes; report
/// writers should map it to a registered buffer name instead of printing
/// the raw value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BufId(usize);

/// Device global memory: a flat array of `f64` cells shared by all blocks.
#[derive(Debug)]
pub struct GlobalMem {
    cells: Cells,
}

impl GlobalMem {
    /// Allocates zeroed global memory of `len` doubles.
    pub fn zeroed(len: usize) -> Self {
        Self { cells: Cells::zeroed(len, "global") }
    }

    /// Uploads host data.
    pub fn from_slice(data: &[f64]) -> Self {
        Self { cells: Cells::from_slice(data, "global") }
    }

    /// This allocation's identity for access observers.
    pub fn id(&self) -> BufId {
        self.cells.id()
    }

    /// Number of doubles.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the allocation is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.len() == 0
    }

    /// Raw load without event accounting (host-side access).
    #[inline]
    pub fn load(&self, idx: usize) -> f64 {
        self.cells.load(idx)
    }

    /// Raw store without event accounting (host-side access).
    #[inline]
    pub fn store(&self, idx: usize, v: f64) {
        self.cells.store(idx, v)
    }

    /// Downloads device data back to the host.
    pub fn to_vec(&self) -> Vec<f64> {
        self.cells.to_vec()
    }

    /// Bounds-checked base pointer of `len` contiguous doubles starting at
    /// `idx`, for vectorized batch phase bodies. Panics (attributably) if
    /// the range overruns the allocation. Reads and writes through the
    /// pointer are subject to the same disjoint-cell concurrency contract
    /// as [`GlobalMem::load`] / [`GlobalMem::store`].
    #[inline]
    pub fn range_ptr(&self, idx: usize, len: usize) -> *mut f64 {
        self.cells.range_ptr("range access", idx, len)
    }
}

/// Per-block shared memory (the `__shared__` arrays of Fig. 5), used by
/// the legacy OS-thread engine. The phase interpreter gives each block a
/// plain block-local `Vec<f64>` instead.
#[derive(Debug)]
pub struct SharedMem {
    cells: Cells,
}

impl SharedMem {
    /// Allocates zeroed shared memory of `len` doubles.
    pub fn zeroed(len: usize) -> Self {
        Self { cells: Cells::zeroed(len, "shared") }
    }

    /// Number of doubles.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when no shared memory was requested.
    pub fn is_empty(&self) -> bool {
        self.cells.len() == 0
    }

    /// Raw load (event accounting happens in the engine contexts).
    #[inline]
    pub fn load(&self, idx: usize) -> f64 {
        self.cells.load(idx)
    }

    /// Raw store (event accounting happens in the engine contexts).
    #[inline]
    pub fn store(&self, idx: usize, v: f64) {
        self.cells.store(idx, v)
    }
}

/// Atomic event counters mirroring the CUPTI counters of
/// [`crate::cupti::CuptiCounter`].
///
/// The phase interpreter never touches these from a hot path: each block
/// accumulates into a plain [`BlockCounters`] and flushes the totals here
/// once, at block retirement. The legacy engine still increments them per
/// event, which is part of why it is slow.
#[derive(Debug, Default)]
pub struct EventCounters {
    /// Double-precision flops.
    pub flops: AtomicU64,
    /// Shared-memory loads.
    pub shared_loads: AtomicU64,
    /// Shared-memory stores.
    pub shared_stores: AtomicU64,
    /// Global-memory loads.
    pub global_loads: AtomicU64,
    /// Global-memory stores.
    pub global_stores: AtomicU64,
    /// Barriers executed (counted once per block).
    pub barriers: AtomicU64,
}

/// Plain per-block event counters: incremented without synchronization
/// while a block runs, flushed into the launch-wide [`EventCounters`]
/// exactly once when the block retires.
#[derive(Debug, Default, Clone, Copy)]
pub struct BlockCounters {
    /// Double-precision flops.
    pub flops: u64,
    /// Shared-memory loads.
    pub shared_loads: u64,
    /// Shared-memory stores.
    pub shared_stores: u64,
    /// Global-memory loads.
    pub global_loads: u64,
    /// Global-memory stores.
    pub global_stores: u64,
    /// Barriers executed by this block.
    pub barriers: u64,
}

impl BlockCounters {
    /// Adds this block's totals into the launch counters (one atomic RMW
    /// per counter per block, instead of one per event).
    pub fn flush_into(&self, events: &EventCounters) {
        events.flops.fetch_add(self.flops, Ordering::Relaxed);
        events.shared_loads.fetch_add(self.shared_loads, Ordering::Relaxed);
        events.shared_stores.fetch_add(self.shared_stores, Ordering::Relaxed);
        events.global_loads.fetch_add(self.global_loads, Ordering::Relaxed);
        events.global_stores.fetch_add(self.global_stores, Ordering::Relaxed);
        events.barriers.fetch_add(self.barriers, Ordering::Relaxed);
    }
}

/// A plain snapshot of [`EventCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EmuEvents {
    /// Double-precision flops.
    pub flops: u64,
    /// Shared-memory loads.
    pub shared_loads: u64,
    /// Shared-memory stores.
    pub shared_stores: u64,
    /// Global-memory loads.
    pub global_loads: u64,
    /// Global-memory stores.
    pub global_stores: u64,
    /// Barriers executed (per block).
    pub barriers: u64,
}

impl EventCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshots the current counts.
    pub fn snapshot(&self) -> EmuEvents {
        EmuEvents {
            flops: self.flops.load(Ordering::Relaxed),
            shared_loads: self.shared_loads.load(Ordering::Relaxed),
            shared_stores: self.shared_stores.load(Ordering::Relaxed),
            global_loads: self.global_loads.load(Ordering::Relaxed),
            global_stores: self.global_stores.load(Ordering::Relaxed),
            barriers: self.barriers.load(Ordering::Relaxed),
        }
    }
}

impl EmuEvents {
    /// Element-wise sum — the compound-application count of the additivity
    /// theory.
    pub fn plus(self, o: EmuEvents) -> EmuEvents {
        EmuEvents {
            flops: self.flops + o.flops,
            shared_loads: self.shared_loads + o.shared_loads,
            shared_stores: self.shared_stores + o.shared_stores,
            global_loads: self.global_loads + o.global_loads,
            global_stores: self.global_stores + o.global_stores,
            barriers: self.barriers + o.barriers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_roundtrip() {
        let g = GlobalMem::from_slice(&[1.0, -2.5, 3.25]);
        assert_eq!(g.len(), 3);
        assert!(!g.is_empty());
        assert_eq!(g.load(1), -2.5);
        g.store(1, 7.0);
        assert_eq!(g.to_vec(), vec![1.0, 7.0, 3.25]);
    }

    #[test]
    fn zeroed_memories() {
        let g = GlobalMem::zeroed(4);
        assert_eq!(g.to_vec(), vec![0.0; 4]);
        let s = SharedMem::zeroed(2);
        assert_eq!(s.load(0), 0.0);
        s.store(0, 1.5);
        assert_eq!(s.load(0), 1.5);
    }

    #[test]
    #[should_panic(expected = "global memory load out of bounds: index 4 >= len 4")]
    fn out_of_bounds_load_fails_loudly() {
        GlobalMem::zeroed(4).load(4);
    }

    #[test]
    #[should_panic(expected = "shared memory store out of bounds: index 7 >= len 2")]
    fn out_of_bounds_store_fails_loudly() {
        SharedMem::zeroed(2).store(7, 1.0);
    }

    #[test]
    fn buffer_ids_distinguish_allocations() {
        let a = GlobalMem::zeroed(4);
        let b = GlobalMem::zeroed(4);
        assert_eq!(a.id(), a.id());
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn counters_snapshot_and_sum() {
        let c = EventCounters::new();
        c.flops.fetch_add(10, Ordering::Relaxed);
        c.barriers.fetch_add(2, Ordering::Relaxed);
        let s = c.snapshot();
        assert_eq!(s.flops, 10);
        assert_eq!(s.barriers, 2);
        let sum = s.plus(s);
        assert_eq!(sum.flops, 20);
        assert_eq!(sum.global_loads, 0);
    }

    #[test]
    fn block_counters_flush_once() {
        let events = EventCounters::new();
        let block = BlockCounters {
            flops: 7,
            shared_loads: 6,
            shared_stores: 5,
            global_loads: 4,
            global_stores: 3,
            barriers: 2,
        };
        block.flush_into(&events);
        block.flush_into(&events);
        let s = events.snapshot();
        assert_eq!(
            (s.flops, s.shared_loads, s.shared_stores, s.global_loads, s.global_stores, s.barriers),
            (14, 12, 10, 8, 6, 4)
        );
    }

    #[test]
    fn nan_and_negative_bits_survive() {
        let g = GlobalMem::zeroed(1);
        g.store(0, -0.0);
        assert_eq!(g.load(0).to_bits(), (-0.0f64).to_bits());
        g.store(0, f64::NAN);
        assert!(g.load(0).is_nan());
    }
}
