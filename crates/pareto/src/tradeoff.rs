//! Trade-off analysis over a Pareto front — the paper's headline numbers.
//!
//! Given the front of (time, energy) points, every front point is described
//! relative to the *performance-optimal* solution (minimum time): its
//! **performance degradation** `(t − t_min)/t_min` and its **dynamic energy
//! savings** `(e_perf_opt − e)/e_perf_opt`. Statements like *"allowing 11%
//! performance degradation provides 50% dynamic energy saving"* are then
//! direct lookups.

use crate::front::{pareto_front, BiPoint};
use crate::incremental::FrontTracker;
use serde::{Deserialize, Serialize};

/// One front point's trade-off relative to the performance-optimal solution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Tradeoff {
    /// Index of the point in the original cloud.
    pub index: usize,
    /// The point itself.
    pub point: BiPoint,
    /// Relative performance degradation vs. the fastest front point (≥ 0).
    pub degradation: f64,
    /// Relative dynamic-energy savings vs. the fastest front point
    /// (≥ 0 on a true front; 0 for the fastest point itself).
    pub savings: f64,
}

/// The full trade-off analysis of a point cloud.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TradeoffAnalysis {
    /// Front points with their trade-offs, sorted by increasing time.
    pub front: Vec<Tradeoff>,
}

impl TradeoffAnalysis {
    /// Computes the Pareto front of `points` and the trade-off of each front
    /// point. Panics on an empty cloud.
    pub fn of(points: &[BiPoint]) -> Self {
        assert!(!points.is_empty(), "trade-off analysis needs points");
        let front_idx = pareto_front(points);
        let fastest = points[front_idx[0]];
        let front = front_idx
            .into_iter()
            .map(|i| {
                let p = points[i];
                Tradeoff {
                    index: i,
                    point: p,
                    degradation: (p.time - fastest.time) / fastest.time,
                    savings: (fastest.energy - p.energy) / fastest.energy,
                }
            })
            .collect();
        Self { front }
    }

    /// Builds the analysis from an online front maintained by a
    /// [`FrontTracker`], skipping the full-cloud sort of
    /// [`TradeoffAnalysis::of`]. Tracker ids become [`Tradeoff::index`].
    ///
    /// Streaming a cloud through a tracker and finishing with this
    /// constructor produces the same analysis as collecting the cloud and
    /// calling [`TradeoffAnalysis::of`], in `O(n log f)` instead of
    /// `O(n log n)` (where `f` is the front size, typically ≪ n). Panics
    /// on an empty tracker.
    pub fn from_tracker(tracker: &FrontTracker) -> Self {
        let entries = tracker.front();
        assert!(!entries.is_empty(), "trade-off analysis needs points");
        let fastest = entries[0].0;
        let front = entries
            .iter()
            .map(|&(p, id)| Tradeoff {
                index: id,
                point: p,
                degradation: (p.time - fastest.time) / fastest.time,
                savings: (fastest.energy - p.energy) / fastest.energy,
            })
            .collect();
        Self { front }
    }

    /// Number of points in the front (the paper reports "the observed
    /// average and maximum points in the Pareto fronts").
    pub fn len(&self) -> usize {
        self.front.len()
    }

    /// True when the front is a single point — i.e. "the performance-optimal
    /// solution is also optimal for dynamic energy" (K40c's global front).
    pub fn is_singleton(&self) -> bool {
        self.front.len() == 1
    }

    /// Returns true if the front is empty (cannot happen for non-empty input).
    pub fn is_empty(&self) -> bool {
        self.front.is_empty()
    }

    /// The performance-optimal front point.
    pub fn performance_optimal(&self) -> &Tradeoff {
        &self.front[0]
    }

    /// The energy-optimal front point (last on a 2-D front).
    pub fn energy_optimal(&self) -> &Tradeoff {
        self.front.last().expect("non-empty front")
    }

    /// The best (largest) energy savings achievable while tolerating at most
    /// `max_degradation` relative performance loss; `None` if no front point
    /// other than the fastest qualifies with positive savings.
    ///
    /// `max_savings_within(0.11)` on the P100 N=10240 front answers the
    /// paper's "allowing 11% performance degradation provides 50% dynamic
    /// energy saving".
    pub fn max_savings_within(&self, max_degradation: f64) -> Option<&Tradeoff> {
        self.front
            .iter()
            .filter(|t| t.degradation <= max_degradation && t.savings > 0.0)
            .max_by(|a, b| a.savings.total_cmp(&b.savings))
    }

    /// The maximum savings on the front and the degradation it costs, i.e.
    /// the paper's "(savings, degradation)" pair such as (50%, 11%).
    /// `None` when the front is a singleton.
    pub fn best_pair(&self) -> Option<(f64, f64)> {
        self.front
            .iter()
            .filter(|t| t.savings > 0.0)
            .max_by(|a, b| a.savings.total_cmp(&b.savings))
            .map(|t| (t.savings, t.degradation))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(v: &[(f64, f64)]) -> Vec<BiPoint> {
        v.iter().map(|&(t, e)| BiPoint::new(t, e)).collect()
    }

    #[test]
    fn singleton_front() {
        // One point dominates all others.
        let a = TradeoffAnalysis::of(&pts(&[(1.0, 1.0), (2.0, 2.0), (3.0, 1.5)]));
        assert!(a.is_singleton());
        assert!(!a.is_empty());
        assert_eq!(a.best_pair(), None);
        assert!(a.max_savings_within(1.0).is_none());
    }

    #[test]
    fn paper_style_pair() {
        // Fastest point: t=1.0, e=100; frugal point: t=1.11, e=50.
        let a = TradeoffAnalysis::of(&pts(&[(1.0, 100.0), (1.11, 50.0), (1.5, 90.0)]));
        assert_eq!(a.len(), 2);
        let (sav, deg) = a.best_pair().unwrap();
        assert!((sav - 0.5).abs() < 1e-12);
        assert!((deg - 0.11).abs() < 1e-12);
        // Within an 11% budget (plus float headroom) the 50% saving is reachable…
        assert!(a.max_savings_within(0.1101).is_some());
        // …but not within a 5% budget.
        assert!(a.max_savings_within(0.05).is_none());
    }

    #[test]
    fn degradation_and_savings_monotone_along_front() {
        let a = TradeoffAnalysis::of(&pts(&[
            (1.0, 10.0),
            (1.2, 8.0),
            (1.5, 6.0),
            (2.0, 5.0),
            (1.1, 9.5), // on front too
        ]));
        for w in a.front.windows(2) {
            assert!(w[0].degradation <= w[1].degradation);
            assert!(w[0].savings <= w[1].savings);
        }
        assert_eq!(a.performance_optimal().degradation, 0.0);
        assert_eq!(a.performance_optimal().savings, 0.0);
        assert!(a.energy_optimal().savings > 0.0);
    }

    #[test]
    fn from_tracker_matches_batch_analysis() {
        let cloud = pts(&[
            (3.0, 3.0),
            (1.0, 5.0),
            (5.0, 1.0),
            (2.0, 4.0),
            (4.0, 4.0),
            (2.0, 4.0), // duplicate
        ]);
        let mut tracker = FrontTracker::new();
        for (i, &p) in cloud.iter().enumerate() {
            tracker.insert(p, i);
        }
        let streamed = TradeoffAnalysis::from_tracker(&tracker);
        let batch = TradeoffAnalysis::of(&cloud);
        assert_eq!(streamed, batch);
    }

    #[test]
    fn savings_relative_to_fastest_not_global_max() {
        let a = TradeoffAnalysis::of(&pts(&[(1.0, 100.0), (2.0, 25.0)]));
        let eo = a.energy_optimal();
        assert!((eo.savings - 0.75).abs() < 1e-12);
        assert!((eo.degradation - 1.0).abs() < 1e-12);
    }
}
