//! Table I: specifications of the Haswell CPU, K40c and P100 PCIe.

use enprop_cpusim::CpuTopology;
use enprop_gpusim::GpuArch;
use serde::{Deserialize, Serialize};

/// One platform's section of Table I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Section {
    /// Platform heading.
    pub platform: String,
    /// `(property, value)` rows.
    pub rows: Vec<(String, String)>,
}

/// Generates all of Table I.
pub fn generate() -> Vec<Table1Section> {
    let cpu = CpuTopology::haswell_e5_2670v3();
    let mut out = vec![Table1Section { platform: cpu.name.clone(), rows: cpu.table_rows() }];
    for gpu in GpuArch::catalog() {
        out.push(Table1Section { platform: gpu.name.clone(), rows: gpu.table_rows() });
    }
    out
}

/// Renders Table I as text.
pub fn render() -> String {
    let mut out = String::new();
    for section in generate() {
        out.push_str(&format!("--- {} ---\n", section.platform));
        let width = section.rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        for (k, v) in &section.rows {
            out.push_str(&format!("{k:<width$}  {v}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_platforms_in_order() {
        let t = generate();
        assert_eq!(t.len(), 3);
        assert_eq!(t[0].platform, "Intel Haswell E5-2670V3");
        assert_eq!(t[1].platform, "NVIDIA K40c");
        assert_eq!(t[2].platform, "NVIDIA P100 PCIe");
    }

    #[test]
    fn render_contains_paper_values() {
        let r = render();
        for needle in [
            "1200.402",
            "30720 KB",
            "64 GB DDR4",
            "2880 (745 MHz)",
            "3584 (1328 MHz)",
            "235 W",
            "250 W",
            "(2020.0.4, 0.2.19)",
        ] {
            assert!(r.contains(needle), "missing {needle} in\n{r}");
        }
    }
}
