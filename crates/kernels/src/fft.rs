//! Iterative radix-2 complex FFT.
//!
//! The strong-EP study's workload is a 2-D discrete Fourier transform of an
//! `N × N` complex signal matrix, with work accounted as `5 N² log₂ N`.
//! This module provides the 1-D building block.

/// A complex number (re, im).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };

    /// Creates a complex number.
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// `e^{iθ}`.
    pub fn cis(theta: f64) -> Self {
        Self { re: theta.cos(), im: theta.sin() }
    }

    /// Squared magnitude.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Complex {
        Complex::new(self.re * s, self.im * s)
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, o: Complex) -> Complex {
        Complex::new(self.re * o.re - self.im * o.im, self.re * o.im + self.im * o.re)
    }
}

/// In-place forward FFT. Length must be a power of two.
pub fn fft_inplace(x: &mut [Complex]) {
    transform(x, -1.0);
}

/// In-place inverse FFT (including the 1/n normalization).
pub fn ifft_inplace(x: &mut [Complex]) {
    transform(x, 1.0);
    let inv = 1.0 / x.len() as f64;
    for v in x.iter_mut() {
        *v = v.scale(inv);
    }
}

/// Precomputed twiddle-factor tables for one transform length and
/// direction, reusable across any number of same-length transforms.
///
/// The iterative radix-2 FFT multiplies by `w_k = wlen^k` in its butterfly
/// inner loop; computing those factors there puts a serially dependent
/// complex multiply on the critical path of every butterfly, repeated for
/// every chunk and every row. This table hoists the whole recurrence out:
/// each stage's `len/2` factors are generated once (by the same `w·wlen`
/// recurrence, so values are bit-identical to the inline computation) and
/// the butterfly loop becomes pure loads. A 2-D FFT reuses one table
/// across all `2·n` row transforms of both passes.
#[must_use]
#[derive(Debug, Clone)]
pub struct Twiddles {
    n: usize,
    /// Stage `s` (butterfly length `2^(s+1)`) holds `2^s` factors.
    stages: Vec<Vec<Complex>>,
}

impl Twiddles {
    /// Builds the table for forward transforms of length `n` (a power of
    /// two).
    pub fn forward(n: usize) -> Self {
        Self::with_sign(n, -1.0)
    }

    /// Builds the table for inverse (unnormalized) transforms of length
    /// `n` (a power of two).
    pub fn inverse(n: usize) -> Self {
        Self::with_sign(n, 1.0)
    }

    fn with_sign(n: usize, sign: f64) -> Self {
        assert!(n.is_power_of_two(), "FFT length must be a power of two, got {n}");
        let mut stages = Vec::new();
        let mut len = 2;
        while len <= n {
            let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
            let wlen = Complex::cis(ang);
            let half = len / 2;
            let mut factors = Vec::with_capacity(half);
            let mut w = Complex::new(1.0, 0.0);
            for _ in 0..half {
                factors.push(w);
                w = w * wlen;
            }
            stages.push(factors);
            len <<= 1;
        }
        Self { n, stages }
    }

    /// The transform length this table serves.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the table is for the degenerate length-1 transform.
    pub fn is_empty(&self) -> bool {
        self.n <= 1
    }

    /// In-place transform of `x` (which must have length
    /// [`len`](Twiddles::len)) using the precomputed factors. Bit-identical
    /// to the corresponding [`fft_inplace`]/unnormalized-inverse transform.
    pub fn apply(&self, x: &mut [Complex]) {
        let n = self.n;
        assert_eq!(x.len(), n, "signal length does not match the table");
        if n <= 1 {
            return;
        }
        // Bit-reversal permutation.
        let bits = n.trailing_zeros();
        for i in 0..n {
            let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
            if j > i {
                x.swap(i, j);
            }
        }
        // Butterfly stages: pure loads for the twiddles.
        for (s, factors) in self.stages.iter().enumerate() {
            let len = 2usize << s;
            let half = len / 2;
            for chunk in x.chunks_mut(len) {
                for (k, &w) in factors.iter().enumerate() {
                    let u = chunk[k];
                    let v = chunk[k + half] * w;
                    chunk[k] = u + v;
                    chunk[k + half] = u - v;
                }
            }
        }
    }
}

/// Cooley–Tukey iterative radix-2 with bit-reversal permutation.
/// `sign` is −1 for the forward transform, +1 for the inverse.
///
/// One-shot, allocation-free form: the twiddle recurrence runs once per
/// stage in the outer `k` loop and each factor is reused across all the
/// stage's chunks, instead of being recomputed per chunk in the butterfly
/// inner loop. Values are bit-identical to the per-chunk recurrence (the
/// same `w·wlen` product sequence). Repeated same-length transforms should
/// prefer a shared [`Twiddles`] table.
fn transform(x: &mut [Complex], sign: f64) {
    let n = x.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two, got {n}");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if j > i {
            x.swap(i, j);
        }
    }
    // Butterfly stages, k outer so each twiddle is computed exactly once.
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        let half = len / 2;
        let mut w = Complex::new(1.0, 0.0);
        for k in 0..half {
            let mut i0 = k;
            while i0 < n {
                let u = x[i0];
                let v = x[i0 + half] * w;
                x[i0] = u + v;
                x[i0 + half] = u - v;
                i0 += len;
            }
            w = w * wlen;
        }
        len <<= 1;
    }
}

/// Naive O(n²) DFT, the correctness reference.
pub fn dft_naive(x: &[Complex]) -> Vec<Complex> {
    let n = x.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex::ZERO;
            for (j, &v) in x.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                acc = acc + v * Complex::cis(ang);
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signal(n: usize, seed: u64) -> Vec<Complex> {
        let m = crate::matrix::Matrix::filled(2, n, seed);
        (0..n).map(|i| Complex::new(m.get(0, i), m.get(1, i))).collect()
    }

    fn max_err(a: &[Complex], b: &[Complex]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).norm_sq().sqrt())
            .fold(0.0, f64::max)
    }

    #[test]
    fn fft_matches_naive_dft() {
        for &n in &[1usize, 2, 4, 8, 32, 128] {
            let sig = signal(n, 5);
            let reference = dft_naive(&sig);
            let mut x = sig.clone();
            fft_inplace(&mut x);
            assert!(max_err(&x, &reference) < 1e-9, "n = {n}");
        }
    }

    #[test]
    fn twiddle_table_is_bit_identical_to_inline_transform() {
        for &n in &[1usize, 2, 8, 64, 256] {
            let sig = signal(n, 21);
            let mut inline = sig.clone();
            fft_inplace(&mut inline);
            let mut tabled = sig.clone();
            Twiddles::forward(n).apply(&mut tabled);
            assert_eq!(inline, tabled, "forward n = {n}");

            let mut inline_inv = sig.clone();
            super::transform(&mut inline_inv, 1.0);
            let mut tabled_inv = sig;
            Twiddles::inverse(n).apply(&mut tabled_inv);
            assert_eq!(inline_inv, tabled_inv, "inverse n = {n}");
        }
    }

    #[test]
    fn roundtrip_identity() {
        let sig = signal(256, 9);
        let mut x = sig.clone();
        fft_inplace(&mut x);
        ifft_inplace(&mut x);
        assert!(max_err(&x, &sig) < 1e-10);
    }

    #[test]
    fn parseval_energy_preserved() {
        let sig = signal(512, 13);
        let time_energy: f64 = sig.iter().map(|c| c.norm_sq()).sum();
        let mut x = sig.clone();
        fft_inplace(&mut x);
        let freq_energy: f64 = x.iter().map(|c| c.norm_sq()).sum::<f64>() / x.len() as f64;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-12);
    }

    #[test]
    fn linearity() {
        let a = signal(64, 1);
        let b = signal(64, 2);
        let sum: Vec<Complex> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let (mut fa, mut fb, mut fs) = (a, b, sum);
        fft_inplace(&mut fa);
        fft_inplace(&mut fb);
        fft_inplace(&mut fs);
        let combined: Vec<Complex> = fa.iter().zip(&fb).map(|(x, y)| *x + *y).collect();
        assert!(max_err(&fs, &combined) < 1e-9);
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let mut x = vec![Complex::ZERO; 16];
        x[0] = Complex::new(1.0, 0.0);
        fft_inplace(&mut x);
        for v in &x {
            assert!((v.re - 1.0).abs() < 1e-12 && v.im.abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let mut x = vec![Complex::ZERO; 12];
        fft_inplace(&mut x);
    }
}
