#![warn(missing_docs)]

//! Type-safe physical quantities for energy-proportionality analysis.
//!
//! Energy/performance studies juggle joules, watts, seconds, flop counts and
//! utilization fractions; mixing them up silently is the classic source of
//! wrong conclusions ("energy" plotted where "power" was meant). This crate
//! provides thin `f64` newtypes with only the physically meaningful
//! arithmetic implemented, so `Watts * Seconds` yields [`Joules`] but
//! `Joules + Watts` does not compile.
//!
//! The types are deliberately minimal: `Copy`, ordered, serializable, with
//! human-friendly [`std::fmt::Display`] implementations using engineering
//! prefixes.
//!
//! # Example
//! ```
//! use enprop_units::{Watts, Seconds, Joules};
//! let p = Watts(58.0);
//! let t = Seconds(2.5);
//! let e: Joules = p * t;
//! assert_eq!(e, Joules(145.0));
//! assert_eq!(e / t, p);
//! ```

mod display;
mod quantities;
mod utilization;

pub use display::EngFormat;
pub use quantities::{
    BytesPerSecond, Flops, FlopsPerSecond, Hertz, Joules, MemBytes, Seconds, Watts, Work,
};
pub use utilization::Utilization;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_times_time_is_energy() {
        assert_eq!(Watts(100.0) * Seconds(3.0), Joules(300.0));
        assert_eq!(Seconds(3.0) * Watts(100.0), Joules(300.0));
    }

    #[test]
    fn energy_over_time_is_power() {
        assert_eq!(Joules(300.0) / Seconds(3.0), Watts(100.0));
    }

    #[test]
    fn flops_over_time_is_rate() {
        let r = Flops(2.0e9) / Seconds(2.0);
        assert_eq!(r, FlopsPerSecond(1.0e9));
        assert!((r.gflops() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ratios_are_dimensionless() {
        assert_eq!(Joules(10.0).ratio(Joules(40.0)), 0.25);
        assert_eq!(Seconds(1.0).ratio(Seconds(4.0)), 0.25);
    }

    #[test]
    fn display_uses_engineering_prefixes() {
        assert_eq!(Joules(1500.0).to_string(), "1.500 kJ");
        assert_eq!(Watts(0.25).to_string(), "250.000 mW");
        assert_eq!(Seconds(90.0).to_string(), "90.000 s");
        assert_eq!(FlopsPerSecond(7.0e11).to_string(), "700.000 Gflop/s");
    }
}
