//! Bi-objective workload distribution across the paper's full testbed —
//! the Haswell CPU, the K40c and the P100 together (the hybrid setting of
//! Khaleghzadeh et al. that the paper's Fig. 1 platforms come from).
//!
//! Each processor's discrete time/energy profile is produced by its
//! simulator (each at its own energy-optimal configuration); the exact
//! partitioner then computes every Pareto-optimal way to split the
//! workload between them.
//!
//! ```text
//! cargo run --release --example heterogeneous_partition [CHUNKS]
//! ```

use enprop::apps::GpuMatMulApp;
use enprop::cpusim::{BlasFlavor, CpuDgemmConfig, CpuSimulator, Partitioning, Pinning};
use enprop::ep::{DiscreteProfile, Partitioner};
use enprop::gpusim::GpuArch;

/// One workload chunk = one N×N matrix product at this size.
const CHUNK_N: usize = 4096;

fn main() {
    let total: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(12);

    // CPU profile: the threadgroup DGEMM at its best configuration.
    let sim = CpuSimulator::haswell();
    let cpu_cfg = CpuDgemmConfig {
        partitioning: Partitioning::Square,
        pinning: Pinning::Scatter,
        groups: 1,
        threads_per_group: 24,
        flavor: BlasFlavor::IntelMkl,
    };
    let cpu_run = sim.run_dgemm(&cpu_cfg, CHUNK_N);
    let cpu = DiscreteProfile::from_fn("Haswell CPU", total, |k| {
        (cpu_run.time * k as f64, cpu_run.dynamic_energy() * k as f64)
    });

    // GPU profiles: each GPU at its energy-optimal (BS, G, R) for one
    // product, found by a quick sweep.
    let gpu_profile = |arch: GpuArch, label: &str| {
        let app = GpuMatMulApp::new(arch, 1);
        let best = app
            .sweep_exact(CHUNK_N)
            .into_iter()
            .min_by(|a, b| {
                a.dynamic_energy.partial_cmp(&b.dynamic_energy).expect("NaN energy")
            })
            .expect("non-empty sweep");
        println!(
            "{label}: energy-optimal config BS={} G={} — {:.3} s, {:.1} J per chunk",
            best.config.bs,
            best.config.g,
            best.time.value(),
            best.dynamic_energy.value()
        );
        let (t, e) = (best.time, best.dynamic_energy);
        DiscreteProfile::from_fn(label, total, move |k| (t * k as f64, e * k as f64))
    };
    println!(
        "Haswell CPU: p=1 t=24 MKL — {:.3} s, {:.1} J per chunk",
        cpu_run.time.value(),
        cpu_run.dynamic_energy().value()
    );
    let k40 = gpu_profile(GpuArch::k40c(), "K40c");
    let p100 = gpu_profile(GpuArch::p100_pcie(), "P100");

    // Exact Pareto-optimal distributions.
    let partitioner = Partitioner::new(vec![cpu, k40, p100]);
    let front = partitioner.solve(total);
    println!(
        "\n{} Pareto-optimal distributions of {total} chunks (N = {CHUNK_N} each):",
        front.len()
    );
    println!(
        "{:>5} {:>5} {:>5} {:>10} {:>10}",
        "CPU", "K40c", "P100", "time[s]", "E_d[J]"
    );
    for d in &front {
        println!(
            "{:>5} {:>5} {:>5} {:>10.3} {:>10.1}",
            d.chunks[0],
            d.chunks[1],
            d.chunks[2],
            d.time.value(),
            d.energy.value()
        );
    }
    if let (Some(fast), Some(frugal)) = (front.first(), front.last()) {
        let d_t = (frugal.time.value() - fast.time.value()) / fast.time.value();
        let d_e = (fast.energy.value() - frugal.energy.value()) / fast.energy.value();
        println!(
            "\nacross the front: up to {:.0}% energy savings for {:.0}% longer makespan",
            d_e * 100.0,
            d_t * 100.0
        );
    }
}
