//! Checker acceptance tests: the shipped kernels sanitize clean, and each
//! seeded fixture is caught by exactly the intended checker with stable,
//! fully attributed diagnostics (snapshot-tested verbatim).

use enprop_gpusim::emulator::{
    AccessSink, BlockKernel, Dim2, GlobalMem, PhaseCtx, PhaseOutcome,
};
use enprop_gpusim::{GpuArch, TiledDgemmConfig};
use enprop_sanitize::{fixtures, prelaunch, sanitize_dgemm, sanitize_fft, sanitize_kernel};
use enprop_sanitize::{BufferTable, Checker, FindingKind, MemSpace};

#[test]
fn shipped_dgemm_sanitizes_clean() {
    let arch = GpuArch::k40c();
    for cfg in [
        TiledDgemmConfig { n: 16, bs: 4, g: 2, r: 2 },
        TiledDgemmConfig { n: 32, bs: 32, g: 1, r: 1 },
        TiledDgemmConfig { n: 24, bs: 8, g: 1, r: 2 },
    ] {
        let rep = sanitize_dgemm(cfg, &arch);
        assert!(rep.clean(), "{}: {:?}", rep.kernel, rep.findings.first());
        assert!(rep.blocks > 0, "{} did not execute", rep.kernel);
    }
}

#[test]
fn shipped_fft_sanitizes_clean() {
    let arch = GpuArch::p100_pcie();
    for (n, rows) in [(2usize, 1usize), (16, 2), (64, 3)] {
        let rep = sanitize_fft(n, rows, &arch);
        assert!(rep.clean(), "{}: {:?}", rep.kernel, rep.findings.first());
        assert_eq!(rep.blocks, rows);
    }
}

#[test]
fn missing_barrier_is_caught_by_racecheck_only() {
    let rep = fixtures::missing_barrier_report();
    assert!(!rep.findings.is_empty());
    assert!(
        rep.findings.iter().all(|f| f.checker == Checker::Racecheck),
        "a non-racecheck finding leaked: {:?}",
        rep.findings.iter().find(|f| f.checker != Checker::Racecheck)
    );
    // The hazardous kernel floods past the reporting cap; the overflow is
    // counted, not silently dropped.
    assert!(rep.suppressed > 0);
    // First diagnostic, verbatim: thread (1, 0) staging cell 1 races with
    // thread (0, 0)'s premature MAC read of the same cell.
    assert_eq!(
        rep.findings[0].message,
        "racecheck: shared read-write hazard on cell 1 in phase 0 of block (0, 0): \
         write by thread (1, 0) conflicts with read by thread (0, 0) \
         with no __syncthreads between them"
    );
    assert_eq!(rep.findings[0].block, Some((0, 0)));
    assert_eq!(rep.findings[0].phase, Some(0));
}

#[test]
fn off_by_one_tile_is_caught_by_memcheck_oob_only() {
    let rep = fixtures::oob_tile_report();
    // Exactly one finding: the single out-of-bounds staging load.
    assert_eq!(rep.findings.len(), 1, "{:?}", rep.findings);
    assert_eq!(rep.suppressed, 0);
    let f = &rep.findings[0];
    assert_eq!(f.checker, Checker::Memcheck);
    assert_eq!(
        f.message,
        "memcheck: global read out of bounds on A: index 64 >= len 64 \
         by thread (7, 7) of block (0, 0) in phase 0"
    );
    match &f.kind {
        FindingKind::OutOfBounds { space, buffer, index, len, .. } => {
            assert_eq!(*space, MemSpace::Global);
            assert_eq!(buffer.as_deref(), Some("A"));
            assert_eq!((*index, *len), (64, 64));
        }
        other => panic!("expected OutOfBounds, got {other:?}"),
    }
}

#[test]
fn uninit_accumulator_is_caught_by_memcheck_uninit_only() {
    let rep = fixtures::uninit_accumulator_report();
    // One finding per thread of the 4×4 block, nothing else.
    assert_eq!(rep.findings.len(), 16, "{:?}", rep.findings);
    assert_eq!(rep.suppressed, 0);
    assert!(rep
        .findings
        .iter()
        .all(|f| matches!(f.kind, FindingKind::UninitRead { .. })));
    assert_eq!(
        rep.findings[0].message,
        "memcheck: uninitialized shared read of cell 32 by thread (0, 0) \
         of block (0, 0) in phase 0: no thread of the block ever writes it"
    );
    // The scratch region spans cells 32..48; every cell is reported once.
    let mut cells: Vec<usize> = rep
        .findings
        .iter()
        .map(|f| match f.kind {
            FindingKind::UninitRead { cell, .. } => cell,
            _ => unreachable!(),
        })
        .collect();
    cells.sort_unstable();
    assert_eq!(cells, (32..48).collect::<Vec<_>>());
}

#[test]
fn early_exit_is_caught_by_synccheck_only() {
    let rep = fixtures::divergence_report();
    assert_eq!(rep.findings.len(), 1, "{:?}", rep.findings);
    let f = &rep.findings[0];
    assert_eq!(f.checker, Checker::Synccheck);
    assert_eq!(
        f.message,
        "synccheck: barrier divergence in phase 0 of block (0, 0): \
         1 thread(s) reached __syncthreads while 3 returned early; \
         first early exit: thread (1, 0) — this kernel deadlocks on real hardware"
    );
    match f.kind {
        FindingKind::BarrierDivergence { synced, returned, first_early } => {
            assert_eq!((synced, returned), (1, 3));
            assert_eq!(first_early, (1, 0));
        }
        ref other => panic!("expected BarrierDivergence, got {other:?}"),
    }
}

#[test]
fn self_test_corpus_agrees_with_expected_checkers() {
    for (expected, rep) in fixtures::self_test() {
        assert!(!rep.findings.is_empty(), "{} found nothing", rep.kernel);
        assert!(
            rep.findings.iter().all(|f| f.checker == expected),
            "{}: expected only {expected:?}",
            rep.kernel
        );
    }
}

/// Every block stores to global cell 0 — no barrier can order blocks, so
/// this is the inter-block hazard racecheck must flag.
struct SharedSlotWriters<'a> {
    out: &'a GlobalMem,
}

impl BlockKernel for SharedSlotWriters<'_> {
    type State = ();

    fn block(&self) -> Dim2 {
        Dim2::new(2, 1)
    }

    fn shared_len(&self) -> usize {
        0
    }

    fn init(&self, _bx: usize, _by: usize, _tx: usize, _ty: usize) {}

    fn run_phase<S: AccessSink>(
        &self,
        _p: usize,
        _s: &mut (),
        ctx: &mut PhaseCtx<'_, S>,
    ) -> PhaseOutcome {
        if ctx.tx == 0 {
            ctx.global_store(self.out, 0, (ctx.bx + 1) as f64);
        }
        PhaseOutcome::Done
    }
}

#[test]
fn cross_block_write_sharing_is_an_inter_block_race() {
    let out = GlobalMem::zeroed(4);
    let mut table = BufferTable::new();
    table.register(out.id(), "out", 4);
    let kernel = SharedSlotWriters { out: &out };
    let rep = sanitize_kernel("inter-block-probe", Dim2::new(2, 1), &kernel, table);
    assert_eq!(rep.findings.len(), 1, "{:?}", rep.findings);
    let f = &rep.findings[0];
    assert_eq!(f.checker, Checker::Racecheck);
    assert_eq!(
        f.message,
        "racecheck: inter-block write-write hazard on out[0]: \
         write by block (1, 0) conflicts with write by block (0, 0) \
         — thread blocks cannot synchronize within a launch"
    );
    match &f.kind {
        FindingKind::InterBlockRace { first_block, second_block, .. } => {
            assert_eq!((*first_block, *second_block), ((0, 0), (1, 0)));
        }
        other => panic!("expected InterBlockRace, got {other:?}"),
    }
}

#[test]
fn prelaunch_rejects_bad_dgemm_geometry() {
    let arch = GpuArch::k40c();

    // BS does not divide N: rejected without executing.
    let rep = sanitize_dgemm(TiledDgemmConfig { n: 30, bs: 4, g: 1, r: 1 }, &arch);
    assert_eq!(rep.blocks, 0);
    assert!(rep.findings.iter().any(|f| matches!(
        &f.kind,
        FindingKind::Launch { rule, .. } if rule == "tile-divisibility"
    )));

    // G above the shared-memory group budget (max_group(32) = 2).
    let rep = sanitize_dgemm(TiledDgemmConfig { n: 32, bs: 32, g: 3, r: 1 }, &arch);
    assert_eq!(rep.blocks, 0);
    assert!(rep.findings.iter().any(|f| matches!(
        &f.kind,
        FindingKind::Launch { rule, .. } if rule == "group-size"
    )));

    // BS outside the template family stops validation immediately.
    let findings = prelaunch::check_dgemm(&TiledDgemmConfig { n: 66, bs: 33, g: 1, r: 1 }, &arch);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].checker, Checker::Prelaunch);
    assert_eq!(
        findings[0].message,
        "prelaunch: tile-range: BS=33 is outside the kernel family's template range 1..=32"
    );
}

#[test]
fn prelaunch_rejects_bad_fft_geometry() {
    let arch = GpuArch::k40c();

    let rep = sanitize_fft(24, 1, &arch);
    assert_eq!(rep.blocks, 0);
    assert_eq!(rep.findings.len(), 1);
    assert_eq!(
        rep.findings[0].message,
        "prelaunch: power-of-two: FFT length n=24 must be a power of two >= 2"
    );

    // n = 8192: 4096 threads/block over the 1024 cap AND a 128 KiB shared
    // footprint over the 48 KiB limit — both reported.
    let findings = prelaunch::check_fft(8192, 1, &arch);
    let rules: Vec<&str> = findings
        .iter()
        .map(|f| match &f.kind {
            FindingKind::Launch { rule, .. } => rule.as_str(),
            other => panic!("unexpected {other:?}"),
        })
        .collect();
    assert_eq!(rules, ["thread-budget", "shared-footprint"]);
}
