//! Cross-validation of the FFT implementations: the emulated GPU row-FFT
//! kernel composed into a full 2-D transform must equal the real host
//! 2-D FFT — the same computation through two completely different
//! execution substrates (CUDA-style blocks/barriers vs. host threads).

use enprop::gpusim::emulator::{EmuRowFft, GlobalMem};
use enprop::kernels::{fft2d_serial, Complex, Matrix};

/// Transposes an interleaved complex `n × n` matrix on the host.
fn transpose_interleaved(data: &mut [f64], n: usize) {
    for i in 0..n {
        for j in (i + 1)..n {
            data.swap(2 * (i * n + j), 2 * (j * n + i));
            data.swap(2 * (i * n + j) + 1, 2 * (j * n + i) + 1);
        }
    }
}

#[test]
fn emulated_2d_fft_matches_host_2d_fft() {
    let n = 16;
    let re = Matrix::filled(n, n, 21);
    let im = Matrix::filled(n, n, 22);

    // Host path: the real parallel 2-D FFT.
    let mut host: Vec<Complex> = (0..n * n)
        .map(|k| Complex::new(re.as_slice()[k], im.as_slice()[k]))
        .collect();
    fft2d_serial(&mut host, n);

    // Emulator path: row pass → transpose → row pass → transpose, with the
    // row FFTs executed as CUDA-style kernels.
    let mut interleaved: Vec<f64> = (0..n * n)
        .flat_map(|k| [re.as_slice()[k], im.as_slice()[k]])
        .collect();
    let kernel = EmuRowFft::new(n, n);

    let dev = GlobalMem::from_slice(&interleaved);
    kernel.run(&dev);
    interleaved = dev.to_vec();
    transpose_interleaved(&mut interleaved, n);

    let dev = GlobalMem::from_slice(&interleaved);
    kernel.run(&dev);
    interleaved = dev.to_vec();
    transpose_interleaved(&mut interleaved, n);

    for (k, c) in host.iter().enumerate() {
        assert!(
            (interleaved[2 * k] - c.re).abs() < 1e-9,
            "re mismatch at {k}: {} vs {}",
            interleaved[2 * k],
            c.re
        );
        assert!((interleaved[2 * k + 1] - c.im).abs() < 1e-9, "im mismatch at {k}");
    }
}

#[test]
fn emulated_fft_work_accounting_matches_paper_scaling() {
    // The emulator's flop count per 2-D transform grows as Θ(N² log N),
    // the shape of the paper's W = 5 N² log₂ N work measure.
    let flops_2d = |n: usize| {
        let data = vec![0.5; 2 * n * n];
        let dev = GlobalMem::from_slice(&data);
        let ev = EmuRowFft::new(n, n).run(&dev);
        2 * ev.flops // row pass + (identical) column pass
    };
    let f8 = flops_2d(8) as f64;
    let f16 = flops_2d(16) as f64;
    // Ratio of N² log₂ N terms: (16²·4)/(8²·3) = 1024/192.
    let expect = (16.0 * 16.0 * 4.0) / (8.0 * 8.0 * 3.0);
    let got = f16 / f8;
    assert!((got - expect).abs() < 1e-9, "{got} vs {expect}");
}
