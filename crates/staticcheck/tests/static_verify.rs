//! End-to-end tests of the static launch-space verifier: the DGEMM
//! family model learns from tiny probes, proves lattice configs clean,
//! reproduces flushed event counters bitwise, flags every seeded buggy
//! fixture, and falls back (typed, never silent) on the non-affine FFT.

use enprop_gpusim::emulator::EmuRowFft;
use enprop_gpusim::{CuptiCounter, CuptiReport, TiledDgemmConfig};
use enprop_staticcheck::dgemm::{validate_counts, validation_set, verify_fig_lattices};
use enprop_staticcheck::fixtures::analyze_fixtures;
use enprop_staticcheck::probe::ProbeSink;
use enprop_staticcheck::report::FallbackKind;
use enprop_staticcheck::{affine, DgemmStaticModel};
use enprop_sanitize::report::Checker;

fn model() -> DgemmStaticModel {
    DgemmStaticModel::learn().expect("the shipped DGEMM family must be affine-summarizable")
}

#[test]
fn dgemm_model_learns_and_proves_lattice_samples_clean() {
    let m = model();
    // A spread of real lattice configs, including the largest.
    for (n, bs, g, r) in
        [(8704usize, 32usize, 1usize, 8usize), (8704, 17, 2, 4), (10240, 32, 8, 1), (14336, 31, 4, 2), (14336, 1, 1, 8)]
    {
        let cfg = TiledDgemmConfig { n, bs, g, r };
        let report = m.verify_config(&cfg);
        assert!(
            report.proven_clean(),
            "{cfg} should be proven clean, got findings {:?} fallbacks {:?}",
            report.findings,
            report.fallbacks
        );
    }
}

#[test]
fn full_fig_lattices_prove_clean() {
    let m = model();
    let sweeps = verify_fig_lattices(&m);
    assert_eq!(sweeps.len(), 4);
    for s in &sweeps {
        assert!(s.configs > 0, "{}: empty lattice", s.label);
        assert_eq!(s.findings, 0, "{}: unexpected findings {:?}", s.label, s.dirty);
        assert_eq!(s.fallbacks, 0, "{}: unexpected fallbacks {:?}", s.label, s.dirty);
    }
}

#[test]
fn closed_form_counts_match_flushed_events_bitwise() {
    let m = model();
    for cfg in validation_set() {
        let (stat, dynamic) = validate_counts(&m, &cfg);
        assert_eq!(stat, dynamic, "{cfg}: static counts diverge from flushed events");
    }
}

#[test]
fn closed_form_counts_match_analytic_cupti_model_at_lattice_scale() {
    // At real lattice sizes nothing can execute; the independent
    // analytic CUPTI model is the cross-check there.
    let m = model();
    for (_, arch, n) in enprop_staticcheck::dgemm::fig_lattice_specs() {
        for cfg in TiledDgemmConfig::enumerate(&arch, n, enprop_staticcheck::dgemm::TOTAL_PRODUCTS)
        {
            let stat = m.counts(&cfg);
            let cupti = CuptiReport::of(&cfg);
            let expect =
                |c: CuptiCounter| u64::try_from(cupti.get(c).true_count).expect("fits u64");
            assert_eq!(stat.flops, expect(CuptiCounter::FlopCountDp), "{cfg} flops");
            assert_eq!(stat.shared_loads, expect(CuptiCounter::SharedLoad), "{cfg} shld");
            assert_eq!(stat.shared_stores, expect(CuptiCounter::SharedStore), "{cfg} shst");
            assert_eq!(stat.global_loads, expect(CuptiCounter::GldTransactions), "{cfg} gld");
            assert_eq!(stat.global_stores, expect(CuptiCounter::GstTransactions), "{cfg} gst");
            assert_eq!(stat.barriers, expect(CuptiCounter::BarrierSync), "{cfg} barriers");
        }
    }
}

#[test]
fn all_seeded_fixtures_flagged_statically_with_dynamic_parity() {
    let outcomes = analyze_fixtures();
    assert_eq!(outcomes.len(), 4);
    for o in &outcomes {
        assert!(
            o.caught,
            "{}: expected a static {} verdict, got {:?} (fallbacks {:?})",
            o.label,
            o.expected.as_str(),
            o.report.findings,
            o.report.fallbacks
        );
        assert!(
            o.parity,
            "{}: no static finding matches the dynamic sanitizer's diagnostics: {:?}",
            o.label, o.report.findings
        );
    }
    let checkers: Vec<Checker> = outcomes.iter().map(|o| o.expected).collect();
    assert_eq!(
        checkers,
        [Checker::Racecheck, Checker::Memcheck, Checker::Memcheck, Checker::Synccheck]
    );
}

#[test]
fn fft_kernel_falls_back_as_non_affine() {
    // The FFT's bit-reversal and butterfly indexing is genuinely not
    // affine in the thread coordinates: the analyzer must refuse to
    // summarize it (typed fallback → dynamic sanitize), not mis-prove it.
    let (n, rows) = (16usize, 2usize);
    let data = enprop_gpusim::emulator::GlobalMem::from_slice(&vec![0.0; 2 * rows * n]);
    let fft = EmuRowFft::new(n, rows);
    let mut blocks = Vec::new();
    fft.run_monitored(
        &data,
        |_, _| ProbeSink::default(),
        |bx, by, sink: ProbeSink, exit| {
            blocks.push(enprop_staticcheck::probe::BlockProbe {
                bx,
                by,
                accesses: sink.into_accesses(),
                exit,
            });
        },
    );
    let block = blocks[0].accesses.iter().map(|a| a.tx).max().unwrap() + 1;
    let registry = vec![(data.id(), "signal".to_string(), 2 * rows * n)];
    let res = affine::summarize_launch(&blocks, (block, 1), (1, rows), &registry);
    let fb = res.expect_err("FFT access patterns must not be certified affine");
    assert_eq!(fb.kind, FallbackKind::NonAffine, "unexpected fallback: {fb:?}");
}
