#![warn(missing_docs)]

//! Statistical substrate for energy-proportionality experiments.
//!
//! Everything the paper's methodology needs, implemented from scratch:
//!
//! * **Special functions** ([`special`]): ln-gamma, regularized incomplete
//!   gamma/beta, error function — the numerical bedrock for the
//!   distributions.
//! * **Distributions** ([`dist`]): Normal, Student-t and χ² with CDFs and
//!   quantiles.
//! * **The measurement protocol** ([`protocol`]): the paper runs every
//!   experiment "repeatedly until the sample mean lies in the 95% confidence
//!   interval and a precision of 0.025 (2.5%) is achieved" using Student's
//!   t-test, then validates normality with Pearson's χ² test. That loop is
//!   [`protocol::measure_until_ci`].
//! * **Regression** ([`regress`], [`linalg`]): ordinary least squares —
//!   simple, polynomial and multiple (for linear energy-predictive models) —
//!   on top of a small dense LU solver.
//! * **Trend analysis** ([`trend`]): linear and concave-polynomial trend
//!   lines (the green/blue lines of Fig. 4), plateau detection, and the
//!   *functional-relationship* test that formalizes "the dynamic power is a
//!   non-functional relation of average utilization".
//! * **Descriptive statistics** ([`describe`]) and correlation ([`corr`]).

pub mod corr;
pub mod describe;
pub mod dist;
pub mod linalg;
pub mod protocol;
pub mod regress;
pub mod running;
pub mod special;
pub mod trend;

pub use describe::Summary;
pub use dist::{ChiSquared, Normal, StudentT};
pub use protocol::{
    measure_until_ci, try_measure_until_ci, MeasureConfig, Measurement, PearsonChiSquared,
};
pub use regress::{LinearFit, MultiLinearFit, PolyFit};
pub use running::Running;
pub use trend::{FunctionalTest, Plateau, TrendLine};
