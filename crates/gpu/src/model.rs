//! Analytic time/power model of the paper's tiled matrix-multiplication
//! kernel (Fig. 5) at full problem sizes.
//!
//! # Mechanisms
//!
//! The model derives kernel time from four first-order effects and
//! steady-state dynamic power from the calibrated per-architecture
//! [`PowerModel`](crate::arch::PowerModel):
//!
//! * **Occupancy** — resident blocks per SM are the floor of three resource
//!   ratios ([`Occupancy`]); occupancy is jagged in `BS`, which is what
//!   spreads the (time, energy) cloud.
//! * **Coalescing/alignment** — a block row of `BS` doubles spans
//!   `⌈8·BS/128⌉` 128-byte transactions plus a misalignment overhead when
//!   `8·BS` is not line-aligned; Kepler pays a larger overhead than Pascal.
//!   This is why `BS = 32` (and 16) are sweet spots and why the fastest
//!   configuration on both GPUs uses `BS = 32`.
//! * **Padded tiles** — `⌈N/BS⌉` tiles compute `(⌈N/BS⌉·BS)³ / N³` of the
//!   useful flops.
//! * **Latency hiding** — compute throughput ramps with resident threads
//!   until the DP pipelines are covered; HBM/GDDR bandwidth ramps with
//!   memory-level parallelism.
//!
//! Auto-boost (P100): when occupancy reaches the boost threshold the core
//! clock gains `boost_speedup` and dynamic power is multiplied by
//! `boost_power_mult` (capped at the TDP headroom). The 58 W warm-up
//! component draws for at most `warmup_duration_s` per kernel launch.

use crate::arch::GpuArch;
use crate::occupancy::Occupancy;
use enprop_units::{Joules, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// One application configuration of the Fig. 5 kernel: `G × R` products of
/// two dense `N × N` matrices with per-block shared-memory dimension `BS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TiledDgemmConfig {
    /// Matrix dimension N.
    pub n: usize,
    /// Per-block shared-memory (tile) dimension, 1..=32.
    pub bs: usize,
    /// Group size: device matrix-product codes repeated textually, 1..=8.
    pub g: usize,
    /// Number of runs of a group.
    pub r: usize,
}

impl std::fmt::Display for TiledDgemmConfig {
    /// The paper's naming: `N=.. BS=.. G=.. R=..` — what sweep-failure
    /// reports print instead of the `{:?}` struct dump.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "N={} BS={} G={} R={}", self.n, self.bs, self.g, self.r)
    }
}

/// Shared-memory bytes a `BS` tile pair occupies: `2 × BS² × 8`.
pub fn shared_bytes(bs: usize) -> usize {
    2 * bs * bs * 8
}

/// The per-`BS` limit on the group size `G`.
///
/// The paper: "Due to the limited size of the per-block shared memory, only
/// certain (G, R) combinations are permissible for a given BS". We model the
/// compiled group budget as 32 KiB of tile state, which reproduces Fig. 5's
/// kernel family (e.g. `dgemm32` only instantiates G ∈ {1, 2}).
pub fn max_group(bs: usize) -> usize {
    let budget = 32 * 1024;
    (budget / shared_bytes(bs)).clamp(1, 8)
}

impl TiledDgemmConfig {
    /// Total matrix products computed: `G × R`.
    pub fn products(&self) -> usize {
        self.g * self.r
    }

    /// Threads per block: `BS²`.
    pub fn threads_per_block(&self) -> usize {
        self.bs * self.bs
    }

    /// Shared-memory bytes per block.
    pub fn shared_bytes(&self) -> usize {
        shared_bytes(self.bs)
    }

    /// Structural validity on an architecture (launchable occupancy, G
    /// within the group budget, BS within the template family).
    pub fn is_valid(&self, arch: &GpuArch) -> bool {
        (1..=32).contains(&self.bs)
            && (1..=8).contains(&self.g)
            && self.r >= 1
            && self.n >= self.bs
            && self.g <= max_group(self.bs)
            && Occupancy::compute(arch, self.threads_per_block(), self.shared_bytes()).is_some()
    }

    /// Enumerates every valid configuration solving the workload of
    /// `total_products` products of size `n` — the sweep of Figs. 2, 7, 8.
    ///
    /// Occupancy is checked once per `BS` (it does not depend on `G` or
    /// `R`), not once per `(BS, G)` pair as a naive `is_valid` filter would.
    pub fn enumerate(arch: &GpuArch, n: usize, total_products: usize) -> Vec<TiledDgemmConfig> {
        assert!(total_products >= 1, "need at least one product");
        let mut out = Vec::new();
        for bs in 1..=32 {
            if bs > n {
                continue;
            }
            if Occupancy::compute(arch, bs * bs, shared_bytes(bs)).is_none() {
                continue;
            }
            for g in 1..=max_group(bs) {
                if !total_products.is_multiple_of(g) {
                    continue;
                }
                let cfg = TiledDgemmConfig { n, bs, g, r: total_products / g };
                debug_assert!(cfg.is_valid(arch));
                out.push(cfg);
            }
        }
        out
    }
}

/// Predicted execution profile of one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelEstimate {
    /// Kernel wall time.
    pub time: Seconds,
    /// Steady-state dynamic power of the compute/memory subsystems.
    pub steady_power: Watts,
    /// The warm-up component's power (0 after `warmup_time`).
    pub warmup_power: Watts,
    /// How long the warm-up component draws within this launch.
    pub warmup_time: Seconds,
    /// Achieved occupancy fraction.
    pub occupancy: f64,
    /// Compute share of the bottleneck time ∈ [0, 1].
    pub compute_share: f64,
    /// Memory share of the bottleneck time ∈ [0, 1].
    pub memory_share: f64,
    /// Whether the auto-boost state engaged.
    pub boosted: bool,
}

impl KernelEstimate {
    /// Total dynamic energy of the launch (steady + warm-up component).
    pub fn dynamic_energy(&self) -> Joules {
        self.steady_power * self.time + self.warmup_power * self.warmup_time
    }

    /// Mean dynamic power over the launch.
    pub fn mean_dynamic_power(&self) -> Watts {
        self.dynamic_energy() / self.time
    }
}

/// The per-`(N, BS)` sub-result of the model, shared by every `(G, R)`
/// variant of a sweep.
///
/// `G` and `R` only enter the model through total product count and the
/// i-cache penalty; everything expensive — occupancy, the latency-hiding
/// and bandwidth ramps, the per-product bottleneck time, steady-state
/// power — depends on `(N, BS)` alone. Sweep drivers compute one profile
/// per distinct `BS` and expand it to all `(G, R)` variants via
/// [`TiledDgemm::estimate_from_profile`], instead of re-deriving it per
/// configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProductProfile {
    /// Matrix dimension the profile was computed for.
    pub n: usize,
    /// Tile dimension the profile was computed for.
    pub bs: usize,
    /// Wall time of one matrix product at `G = 1` (before the i-cache
    /// penalty and launch overhead).
    pub t_product: f64,
    /// Steady-state dynamic power (independent of `G` and `R`).
    pub steady_power: Watts,
    /// Achieved occupancy fraction.
    pub occupancy: f64,
    /// Compute share of the bottleneck time ∈ [0, 1].
    pub compute_share: f64,
    /// Memory share of the bottleneck time ∈ [0, 1].
    pub memory_share: f64,
    /// Whether the auto-boost state engaged.
    pub boosted: bool,
}

/// The analytic model bound to one architecture.
#[derive(Debug, Clone)]
pub struct TiledDgemm {
    arch: GpuArch,
    /// Occupancy of the `BS × BS` tiled kernel, precomputed per `BS` at
    /// construction (indexed by `BS`; `None` = unlaunchable). The sweep
    /// enumerates hundreds of `(BS, G, R)` configurations that share at
    /// most 32 distinct occupancies, so this is computed exactly once each.
    occupancy_by_bs: [Option<Occupancy>; 33],
}

/// Cycles of arithmetic latency the scheduler must cover per DP unit.
const DP_LATENCY: f64 = 4.0;
/// Resident threads per SM needed to saturate the DRAM interface.
const MLP_THREADS: f64 = 512.0;
/// DRAM transaction (cache line) size in bytes.
const LINE_BYTES: f64 = 128.0;
/// Fixed kernel-launch overhead.
const LAUNCH_OVERHEAD_S: f64 = 2.0e-5;
/// Per-extra-group instruction-cache time penalty (relative).
const ICACHE_PENALTY: f64 = 0.004;
/// L2-resident bandwidth advantage over DRAM.
const L2_BANDWIDTH_MULT: f64 = 3.0;
/// Misalignment overhead in bytes per tile row when `8·BS` is not
/// line-aligned: Kepler (K40c) pays more than Pascal (P100).
fn misalign_overhead(arch: &GpuArch) -> f64 {
    if arch.max_blocks_per_sm <= 16 {
        48.0 // Kepler-class
    } else {
        8.0 // Pascal-class
    }
}

impl TiledDgemm {
    /// Binds the model to an architecture.
    pub fn new(arch: GpuArch) -> Self {
        let mut occupancy_by_bs = [None; 33];
        for (bs, slot) in occupancy_by_bs.iter_mut().enumerate().skip(1) {
            *slot = Occupancy::compute(&arch, bs * bs, shared_bytes(bs));
        }
        Self { arch, occupancy_by_bs }
    }

    /// The bound architecture.
    pub fn arch(&self) -> &GpuArch {
        &self.arch
    }

    /// Cached occupancy of the `BS × BS` tiled kernel (`None` =
    /// unlaunchable or `BS` outside the template family).
    pub fn occupancy(&self, bs: usize) -> Option<Occupancy> {
        if (1..=32).contains(&bs) {
            self.occupancy_by_bs[bs]
        } else {
            None
        }
    }

    /// §IV names two approaches to executing matrix products serially:
    /// textual grouping inside one kernel (a larger `G`, modeled by
    /// [`TiledDgemm::estimate`]) and **separate kernel launches**, modeled
    /// here: `launches` back-to-back launches of `cfg`, each paying its
    /// own launch overhead *and its own warm-up component* — which is why
    /// Fig. 6's separate-launch baseline (`G × E_{G=1}`) exceeds the
    /// grouped kernel's energy at small N.
    pub fn estimate_launch_sequence(
        &self,
        cfg: &TiledDgemmConfig,
        launches: usize,
    ) -> KernelEstimate {
        assert!(launches >= 1, "need at least one launch");
        let one = self.estimate(cfg);
        KernelEstimate {
            time: one.time * launches as f64,
            warmup_time: one.warmup_time * launches as f64,
            ..one
        }
    }

    /// Computes the `(N, BS)` sub-result shared by every `(G, R)` variant:
    /// the per-product bottleneck time and the steady-state power. Panics
    /// when `BS` is outside the template family, `N < BS`, or the kernel
    /// cannot launch.
    pub fn product_profile(&self, n: usize, bs: usize) -> ProductProfile {
        assert!(
            (1..=32).contains(&bs) && n >= bs,
            "invalid (N, BS) = ({n}, {bs}) for {}",
            self.arch.name
        );
        let arch = &self.arch;
        let pm = &arch.power;
        let occ = self.occupancy(bs).expect("unlaunchable BS must be filtered upstream");
        let nf = n as f64;
        let bsf = bs as f64;

        // ---- Time, per matrix product --------------------------------
        let tiles = n.div_ceil(bs);
        let padded = (tiles * bs) as f64;
        let flops = 2.0 * padded.powi(3);

        // Boost state (engages on occupancy; raises clock, multiplies power).
        let boosted = occ.fraction >= pm.boost_occupancy;
        let clock_mult = if boosted { pm.boost_speedup } else { 1.0 };

        // Compute throughput with latency-hiding ramp.
        let latency_threads = arch.dp_units_per_sm as f64 * DP_LATENCY;
        let compute_eff = (occ.active_threads_per_sm as f64 / latency_threads).min(1.0);
        let compute_rate = arch.peak_dp_flops() * compute_eff * clock_mult;
        let compute_time = flops / compute_rate;

        // Global-memory traffic: every tile step loads two BS×BS tiles per
        // block; plus one read-modify-write of C.
        let useful_loads = 2.0 * 8.0 * padded * padded * tiles as f64;
        let c_traffic = 2.0 * 8.0 * nf * nf;
        // Transaction efficiency of one BS-double row segment.
        let row_bytes = 8.0 * bsf;
        let mut fetched_row = LINE_BYTES * (row_bytes / LINE_BYTES).ceil();
        if !(row_bytes as u64).is_multiple_of(LINE_BYTES as u64) {
            fetched_row += misalign_overhead(arch);
        }
        let align_eff = (row_bytes / fetched_row).min(1.0);
        let fetched = useful_loads / align_eff + c_traffic;

        // Bandwidth ramp with memory-level parallelism, and the L2 bonus
        // when the working set is cache-resident.
        let mlp_eff = (occ.active_threads_per_sm as f64 / MLP_THREADS).min(1.0);
        let working_set = 3.0 * 8.0 * nf * nf;
        let cache_mult =
            if working_set <= arch.l2_cache.value() { L2_BANDWIDTH_MULT } else { 1.0 };
        let bandwidth = arch.dram_bandwidth.value() * mlp_eff * cache_mult;
        let mem_time = fetched / bandwidth;

        let t_product = compute_time.max(mem_time);

        // ---- Steady-state dynamic power ------------------------------
        let s_comp = compute_time / t_product;
        let s_mem = mem_time / t_product;
        let gate = pm.gating_effectiveness;
        let mut power = pm.active_base_w
            + pm.compute_w
                * occ.fraction.powf(pm.occ_exponent)
                * (gate * s_comp + (1.0 - gate))
            + pm.memory_w * s_mem;
        if boosted {
            // Cube-law boosted state, capped at the TDP headroom above the
            // card's non-kernel draw.
            let cap = arch.tdp.value() * 0.88;
            power = (power * pm.boost_power_mult).min(cap);
        }

        ProductProfile {
            n,
            bs,
            t_product,
            steady_power: Watts(power),
            occupancy: occ.fraction,
            compute_share: s_comp,
            memory_share: s_mem,
            boosted,
        }
    }

    /// Expands a [`ProductProfile`] to the full estimate of the `(G, R)`
    /// variant: total product count, the i-cache penalty, launch overhead,
    /// and the warm-up window clipped to kernel time.
    pub fn estimate_from_profile(
        &self,
        profile: &ProductProfile,
        g: usize,
        r: usize,
    ) -> KernelEstimate {
        let pm = &self.arch.power;
        let icache = 1.0 + ICACHE_PENALTY * (g as f64 - 1.0);
        let time = (g * r) as f64 * profile.t_product * icache + LAUNCH_OVERHEAD_S;
        KernelEstimate {
            time: Seconds(time),
            steady_power: profile.steady_power,
            warmup_power: Watts(pm.warmup_power_w),
            warmup_time: Seconds(time.min(pm.warmup_duration_s)),
            occupancy: profile.occupancy,
            compute_share: profile.compute_share,
            memory_share: profile.memory_share,
            boosted: profile.boosted,
        }
    }

    /// Predicts the execution profile of `cfg`. Panics when `cfg` is not
    /// valid for this architecture (check [`TiledDgemmConfig::is_valid`]).
    ///
    /// Equivalent (bitwise) to [`TiledDgemm::product_profile`] followed by
    /// [`TiledDgemm::estimate_from_profile`]; sweep drivers use that split
    /// form to compute the profile once per distinct `BS`.
    pub fn estimate(&self, cfg: &TiledDgemmConfig) -> KernelEstimate {
        assert!(cfg.is_valid(&self.arch), "invalid config {cfg:?} for {}", self.arch.name);
        self.estimate_from_profile(&self.product_profile(cfg.n, cfg.bs), cfg.g, cfg.r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: usize, bs: usize, g: usize, r: usize) -> TiledDgemmConfig {
        TiledDgemmConfig { n, bs, g, r }
    }

    #[test]
    fn group_budget_matches_fig5_family() {
        // Fig. 5: dgemm32 only instantiates G ∈ {1, 2}; small BS allows 8.
        assert_eq!(max_group(32), 2);
        assert_eq!(max_group(8), 8);
        assert_eq!(max_group(1), 8);
        assert!(max_group(20) >= 4);
    }

    #[test]
    fn enumerate_covers_all_bs_and_divides_products() {
        let arch = GpuArch::p100_pcie();
        let cfgs = TiledDgemmConfig::enumerate(&arch, 1024, 8);
        assert!(!cfgs.is_empty());
        for c in &cfgs {
            assert!(c.is_valid(&arch));
            assert_eq!(c.products(), 8);
        }
        // Every BS 1..=32 appears (G = 1, R = 8 is always valid).
        for bs in 1..=32 {
            assert!(cfgs.iter().any(|c| c.bs == bs), "missing bs = {bs}");
        }
        // BS=32 has G ∈ {1, 2} only.
        let g32: Vec<usize> = cfgs.iter().filter(|c| c.bs == 32).map(|c| c.g).collect();
        assert_eq!(g32, vec![1, 2]);
    }

    #[test]
    fn bs32_is_fastest_on_both_gpus() {
        for arch in [GpuArch::k40c(), GpuArch::p100_pcie()] {
            let model = TiledDgemm::new(arch);
            let t = |bs: usize| model.estimate(&cfg(4096, bs, 1, 1)).time;
            for bs in [1, 4, 8, 16, 24, 27, 31] {
                assert!(t(32) < t(bs), "{}: bs={bs}", model.arch().name);
            }
        }
    }

    #[test]
    fn tiny_bs_is_catastrophically_slow() {
        let model = TiledDgemm::new(GpuArch::p100_pcie());
        let t1 = model.estimate(&cfg(2048, 1, 1, 1)).time;
        let t32 = model.estimate(&cfg(2048, 32, 1, 1)).time;
        assert!(t1.ratio(t32) > 50.0, "ratio {}", t1.ratio(t32));
    }

    #[test]
    fn time_scales_linearly_with_products() {
        let model = TiledDgemm::new(GpuArch::k40c());
        let t1 = model.estimate(&cfg(4096, 16, 1, 1)).time.value();
        let t4 = model.estimate(&cfg(4096, 16, 1, 4)).time.value();
        // Up to launch overhead, R = 4 is 4× R = 1.
        assert!(((t4 - LAUNCH_OVERHEAD_S) / (t1 - LAUNCH_OVERHEAD_S) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn grouped_configs_slightly_slower_not_faster() {
        // G=4,R=1 does the same work as G=1,R=4 plus i-cache pressure.
        let model = TiledDgemm::new(GpuArch::p100_pcie());
        let flat = model.estimate(&cfg(4096, 16, 1, 4)).time;
        let grouped = model.estimate(&cfg(4096, 16, 4, 1)).time;
        assert!(grouped > flat);
        assert!(grouped.ratio(flat) < 1.05);
    }

    #[test]
    fn p100_boosts_at_full_occupancy_k40c_never() {
        let p100 = TiledDgemm::new(GpuArch::p100_pcie());
        assert!(p100.estimate(&cfg(4096, 32, 1, 1)).boosted);
        assert!(!p100.estimate(&cfg(4096, 27, 1, 1)).boosted);
        let k40 = TiledDgemm::new(GpuArch::k40c());
        assert!(!k40.estimate(&cfg(4096, 32, 1, 1)).boosted);
    }

    #[test]
    fn boosted_power_stays_under_tdp() {
        let model = TiledDgemm::new(GpuArch::p100_pcie());
        let e = model.estimate(&cfg(10240, 32, 1, 1));
        assert!(e.steady_power.value() <= model.arch().tdp.value());
        assert!(e.steady_power.value() > 150.0, "{e:?}");
    }

    #[test]
    fn shares_partition_bottleneck() {
        let model = TiledDgemm::new(GpuArch::k40c());
        let e = model.estimate(&cfg(8704, 24, 1, 1));
        assert!(e.compute_share <= 1.0 && e.memory_share <= 1.0);
        assert!((e.compute_share.max(e.memory_share) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn warmup_clipped_to_kernel_time() {
        let model = TiledDgemm::new(GpuArch::p100_pcie());
        // A tiny kernel finishes before the warm-up window closes.
        let small = model.estimate(&cfg(256, 32, 1, 1));
        assert!(small.warmup_time == small.time);
        // A huge kernel outlives the window.
        let big = model.estimate(&cfg(16384, 32, 1, 4));
        assert!(big.warmup_time.value() == model.arch().power.warmup_duration_s);
        assert!(big.time > big.warmup_time);
    }

    #[test]
    fn dynamic_energy_combines_steady_and_warmup() {
        let model = TiledDgemm::new(GpuArch::k40c());
        let e = model.estimate(&cfg(8704, 32, 1, 1));
        let expected = e.steady_power.value() * e.time.value()
            + e.warmup_power.value() * e.warmup_time.value();
        assert!((e.dynamic_energy().value() - expected).abs() < 1e-9);
        assert!(e.mean_dynamic_power().value() >= e.steady_power.value());
    }

    #[test]
    fn occupancy_cache_matches_direct_computation() {
        for arch in [GpuArch::k40c(), GpuArch::p100_pcie()] {
            let model = TiledDgemm::new(arch);
            for bs in 1..=32 {
                let direct =
                    Occupancy::compute(model.arch(), bs * bs, shared_bytes(bs));
                assert_eq!(model.occupancy(bs), direct, "bs = {bs}");
            }
        }
        assert!(TiledDgemm::new(GpuArch::k40c()).occupancy(0).is_none());
        assert!(TiledDgemm::new(GpuArch::k40c()).occupancy(33).is_none());
    }

    #[test]
    fn shared_profile_reproduces_every_group_variant() {
        // One (N, BS) profile expanded over all (G, R) must equal the
        // direct estimates bitwise — the sweep memoization contract.
        for arch in [GpuArch::k40c(), GpuArch::p100_pcie()] {
            let model = TiledDgemm::new(arch);
            for bs in [7, 16, 32] {
                let profile = model.product_profile(5120, bs);
                for g in 1..=max_group(bs) {
                    if !8usize.is_multiple_of(g) {
                        continue;
                    }
                    let from_profile = model.estimate_from_profile(&profile, g, 8 / g);
                    let direct = model.estimate(&cfg(5120, bs, g, 8 / g));
                    assert_eq!(from_profile, direct, "bs={bs} g={g}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "invalid config")]
    fn invalid_config_rejected() {
        let model = TiledDgemm::new(GpuArch::k40c());
        model.estimate(&cfg(4096, 33, 1, 1));
    }

    #[test]
    fn separate_launches_cost_more_than_grouping() {
        // §IV / Fig. 6: G separate launches pay the warm-up component G
        // times; the grouped kernel pays it once. At small N the grouped
        // form is strictly cheaper.
        let model = TiledDgemm::new(GpuArch::p100_pcie());
        let base = cfg(5120, 16, 1, 1);
        let grouped = model.estimate(&cfg(5120, 16, 4, 1));
        let separate = model.estimate_launch_sequence(&base, 4);
        assert!(separate.dynamic_energy() > grouped.dynamic_energy());
        // The separate-launch energy is exactly 4× the single-launch one.
        let one = model.estimate(&base);
        assert!(
            (separate.dynamic_energy().value() - 4.0 * one.dynamic_energy().value()).abs()
                < 1e-9
        );
        // Times are near-additive either way (the paper's observation).
        assert!(separate.time.ratio(grouped.time) < 1.02);
    }

    // ---- Calibration shape checks (the paper's headline geometry) ----

    /// Collects (time, energy) for all BS at G=1, R=1.
    fn sweep(model: &TiledDgemm, n: usize) -> Vec<(usize, f64, f64)> {
        (1..=32)
            .map(|bs| {
                let e = model.estimate(&cfg(n, bs, 1, 1));
                (bs, e.time.value(), e.dynamic_energy().value())
            })
            .collect()
    }

    #[test]
    fn k40c_global_front_is_singleton_at_bs32() {
        let model = TiledDgemm::new(GpuArch::k40c());
        for n in [8704, 10240] {
            let pts = sweep(&model, n);
            let (t32, e32) = pts.iter().find(|p| p.0 == 32).map(|p| (p.1, p.2)).unwrap();
            for &(bs, t, e) in &pts {
                if bs != 32 {
                    assert!(t > t32 && e > e32, "N={n} bs={bs} breaks the singleton front");
                }
            }
        }
    }

    #[test]
    fn k40c_bs_le_30_region_has_real_tradeoff() {
        // In the BS ≤ 30 region the fastest config must NOT be the most
        // frugal — the local Pareto front of Fig. 7 needs several points.
        let model = TiledDgemm::new(GpuArch::k40c());
        let pts: Vec<(usize, f64, f64)> =
            sweep(&model, 10240).into_iter().filter(|p| p.0 <= 30).collect();
        let fastest = pts.iter().cloned().reduce(|a, b| if b.1 < a.1 { b } else { a }).unwrap();
        let frugal = pts.iter().cloned().reduce(|a, b| if b.2 < a.2 { b } else { a }).unwrap();
        assert_ne!(fastest.0, frugal.0, "no trade-off in the BS<=30 region");
        let savings = (fastest.2 - frugal.2) / fastest.2;
        assert!(savings > 0.04, "local savings too small: {savings}");
    }

    #[test]
    fn p100_global_front_has_multiple_points() {
        let model = TiledDgemm::new(GpuArch::p100_pcie());
        let pts = sweep(&model, 10240);
        let fastest = pts.iter().cloned().reduce(|a, b| if b.1 < a.1 { b } else { a }).unwrap();
        assert_eq!(fastest.0, 32);
        // Some slower config saves a large fraction of dynamic energy.
        let best = pts
            .iter()
            .filter(|p| p.1 > fastest.1)
            .map(|p| (fastest.2 - p.2) / fastest.2)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(best > 0.35, "P100 max savings only {best}");
    }
}
