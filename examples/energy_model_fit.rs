//! Fits the paper's energy-predictive models end to end:
//!
//! 1. the GPU linear dynamic-energy model over CUPTI events, with
//!    additivity-based variable selection — and the §V-C failure mode
//!    where 32-bit counter overflow (N > 2048) corrupts the methodology;
//! 2. the CPU qualitative model (Khokhriakov et al.): dynamic power from
//!    average utilization + dTLB page-walk intensity, with the ablation
//!    showing the dTLB term carries the nonproportionality.
//!
//! ```text
//! cargo run --release --example energy_model_fit
//! ```

use enprop::apps::{cpu_qualitative_model, gpu_energy_model};
use enprop::gpusim::GpuArch;

fn main() {
    println!("== GPU linear dynamic-energy model (P100, BS sweep) ==");
    for (n, label) in [(1024usize, "N = 1024 (counters fit in 32 bits)"), (4096, "N = 4096 (counters overflow)")] {
        println!("-- {label} --");
        for use_reported in [false, true] {
            let study = gpu_energy_model(GpuArch::p100_pcie(), n, use_reported);
            let kind = if use_reported { "reported (u32)" } else { "true" };
            match &study.model {
                Some(m) => println!(
                    "  {kind:>14} counts: model over {:?}, R² = {:.3}",
                    m.variables,
                    m.r_squared()
                ),
                None => println!("  {kind:>14} counts: no variable survived selection"),
            }
        }
        let study = gpu_energy_model(GpuArch::p100_pcie(), n, false);
        println!(
            "  additivity errors: {}",
            study
                .additivity_errors
                .iter()
                .map(|(name, e)| format!("{name} {:.1}%", e * 100.0))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }

    println!("\n== CPU qualitative model (Haswell, MKL sweep, N = 8192) ==");
    let study = cpu_qualitative_model(8192);
    println!(
        "  power ~ util + dTLB walks:  R² = {:.3}  (β = {:.1} + {:.1}·util + {:.1}·walk)",
        study.full_r2, study.beta[0], study.beta[1], study.beta[2]
    );
    println!("  power ~ util only:          R² = {:.3}", study.utilization_only_r2);
    println!(
        "  → the dTLB term explains {:.1} percentage points of variance: the\n    disproportionately energy-expensive activity behind weak-EP violation.",
        (study.full_r2 - study.utilization_only_r2) * 100.0
    );
}
