//! One module per reproduced paper artifact.

pub mod ablations;
pub mod fig1;
pub mod fig2;
pub mod fig4;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod headline;
pub mod sensitivity;
pub mod table1;
pub mod theory;

use enprop_apps::point::DataPoint;
use enprop_apps::GpuMatMulApp;
use enprop_gpusim::{GpuArch, TiledDgemmConfig};
use enprop_pareto::{FrontTracker, TradeoffAnalysis};

/// Total matrix products every configuration of a GPU sweep computes
/// (the common workload of Figs. 2, 7, 8; divisible by every G ≤ 8).
pub const GPU_TOTAL_PRODUCTS: usize = 8;

/// How much of one size's checkpointed sweep came from the journal — the
/// accounting `repro --checkpoint` prints per panel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointSummary {
    /// Matrix size of the sweep.
    pub n: usize,
    /// Configurations replayed from the journal.
    pub replayed: usize,
    /// Configurations measured (and journaled) by this run.
    pub executed: usize,
    /// Bytes of a torn trailing record dropped at journal open.
    pub torn_tail_bytes: u64,
}

/// The noise-free configuration cloud of the GPU matmul application.
pub fn gpu_cloud(arch: GpuArch, n: usize) -> Vec<DataPoint<TiledDgemmConfig>> {
    GpuMatMulApp::new(arch, GPU_TOTAL_PRODUCTS).sweep_exact(n)
}

/// Trade-off analysis of the sub-cloud whose configuration satisfies a
/// predicate (`|_| true` gives the global front). Front-point indices
/// refer into the *original* cloud.
///
/// Matching points stream through a [`FrontTracker`] (`O(log front)` per
/// point) instead of being collected and re-sorted by
/// [`TradeoffAnalysis::of`] — the tracker carries original cloud indices
/// as ids, so no remapping pass is needed either.
pub fn front_of(
    cloud: &[DataPoint<TiledDgemmConfig>],
    pred: impl Fn(&TiledDgemmConfig) -> bool,
) -> TradeoffAnalysis {
    let mut tracker = FrontTracker::new();
    for (i, p) in cloud.iter().enumerate() {
        if pred(&p.config) {
            tracker.insert(p.bi_point(), i);
        }
    }
    TradeoffAnalysis::from_tracker(&tracker)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cloud_and_front_helpers() {
        let cloud = gpu_cloud(GpuArch::k40c(), 2048);
        assert!(cloud.len() > 40);
        let global = front_of(&cloud, |_| true);
        let region = front_of(&cloud, |c| c.bs <= 30);
        assert!(!global.is_empty());
        assert!(
            region.performance_optimal().point.time >= global.performance_optimal().point.time
        );
    }
}
