//! Utilization: the fraction of time a core (or an average over cores) is
//! busy. The simple EP model of the paper is stated in terms of utilization:
//! `P_d = a × U`, `t = b / U`.

use serde::{Deserialize, Serialize};
use std::ops::{Add, Div, Mul, Sub};

/// A utilization level in `[0, 1]`.
///
/// Constructed via [`Utilization::new`] (clamping) or
/// [`Utilization::from_percent`]. Averages over cores use
/// [`Utilization::mean`], matching the paper's "average CPU utilization
/// = the average of the utilizations of the individual cores".
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Utilization(f64);

impl Utilization {
    /// A fully idle core.
    pub const IDLE: Self = Self(0.0);
    /// A fully busy core.
    pub const FULL: Self = Self(1.0);

    /// Creates a utilization, clamping into `[0, 1]`. NaN clamps to 0.
    pub fn new(fraction: f64) -> Self {
        if fraction.is_nan() {
            Self(0.0)
        } else {
            Self(fraction.clamp(0.0, 1.0))
        }
    }

    /// Creates a utilization from a percentage (`0..=100`), clamping.
    pub fn from_percent(pct: f64) -> Self {
        Self::new(pct / 100.0)
    }

    /// The utilization as a fraction in `[0, 1]`.
    #[inline]
    pub fn fraction(self) -> f64 {
        self.0
    }

    /// The utilization as a percentage in `[0, 100]`.
    #[inline]
    pub fn percent(self) -> f64 {
        self.0 * 100.0
    }

    /// Mean utilization over a set of cores; `0` for an empty set.
    pub fn mean(cores: &[Utilization]) -> Utilization {
        if cores.is_empty() {
            return Self::IDLE;
        }
        let total: f64 = cores.iter().map(|u| u.0).sum();
        Self::new(total / cores.len() as f64)
    }

    /// Population standard deviation of per-core utilizations.
    ///
    /// The paper's central observation is that configurations with the *same
    /// mean* utilization but different *spread* consume different dynamic
    /// power; this statistic quantifies the spread.
    pub fn std_dev(cores: &[Utilization]) -> f64 {
        if cores.len() < 2 {
            return 0.0;
        }
        let m = Self::mean(cores).0;
        let var: f64 = cores.iter().map(|u| (u.0 - m).powi(2)).sum::<f64>() / cores.len() as f64;
        var.sqrt()
    }

    /// Saturating addition of a delta (used by the two-core analysis where a
    /// configuration "increases only the utilization of C₁ by ΔU").
    pub fn shifted(self, delta: f64) -> Self {
        Self::new(self.0 + delta)
    }
}

impl Add for Utilization {
    type Output = f64;
    /// Sum of utilizations is a plain scalar (it can exceed 1; e.g. Rivoire
    /// et al. speak of "CPU utilization up to 500%" meaning 5 cores).
    fn add(self, rhs: Self) -> f64 {
        self.0 + rhs.0
    }
}

impl Sub for Utilization {
    type Output = f64;
    fn sub(self, rhs: Self) -> f64 {
        self.0 - rhs.0
    }
}

impl Mul<f64> for Utilization {
    type Output = f64;
    fn mul(self, rhs: f64) -> f64 {
        self.0 * rhs
    }
}

impl Div for Utilization {
    type Output = f64;
    fn div(self, rhs: Self) -> f64 {
        self.0 / rhs.0
    }
}

impl std::fmt::Display for Utilization {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.1}%", self.percent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamping() {
        assert_eq!(Utilization::new(1.5), Utilization::FULL);
        assert_eq!(Utilization::new(-0.5), Utilization::IDLE);
        assert_eq!(Utilization::new(f64::NAN), Utilization::IDLE);
        assert_eq!(Utilization::from_percent(50.0).fraction(), 0.5);
    }

    #[test]
    fn mean_and_spread() {
        let cores = [Utilization::new(0.2), Utilization::new(0.8)];
        assert_eq!(Utilization::mean(&cores).fraction(), 0.5);
        assert!((Utilization::std_dev(&cores) - 0.3).abs() < 1e-12);

        let flat = [Utilization::new(0.5), Utilization::new(0.5)];
        assert_eq!(Utilization::mean(&flat).fraction(), 0.5);
        assert_eq!(Utilization::std_dev(&flat), 0.0);
    }

    #[test]
    fn empty_mean_is_idle() {
        assert_eq!(Utilization::mean(&[]), Utilization::IDLE);
        assert_eq!(Utilization::std_dev(&[]), 0.0);
        assert_eq!(Utilization::std_dev(&[Utilization::FULL]), 0.0);
    }

    #[test]
    fn shifted_saturates() {
        assert_eq!(Utilization::new(0.9).shifted(0.5), Utilization::FULL);
        assert_eq!(Utilization::new(0.1).shifted(-0.5), Utilization::IDLE);
        assert!((Utilization::new(0.4).shifted(0.2).fraction() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn display() {
        assert_eq!(Utilization::new(0.425).to_string(), "42.5%");
    }
}
