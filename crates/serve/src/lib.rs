//! Sweep-as-a-service: a long-running daemon that serves configuration
//! sweeps over HTTP/1.1.
//!
//! The paper's experiments are *sweeps* — measure every configuration of a
//! workload, keep the Pareto front of (time, dynamic energy). Batch
//! drivers rerun the whole sweep for every question asked of the data.
//! This crate turns the sweep engine into a service instead:
//!
//! - [`server`] — the daemon. Accepts JSON sweep requests, shards each
//!   across the deterministic `SweepExecutor` worker pool, and streams
//!   incremental Pareto fronts back as NDJSON over chunked HTTP.
//! - [`cache`] — a content-addressed result cache. Identical
//!   `(arch, workload, config, seed)` requests dedup onto one computation
//!   (in-flight coalescing) and one stored body (CRC-framed persistent
//!   store that survives crashes and torn tails).
//! - [`http`] — a minimal vendored HTTP/1.1 reader/writer in the spirit of
//!   `crates/compat`: enough protocol to serve and load-test the daemon
//!   with zero external dependencies, with typed errors so malformed or
//!   torn requests become clean 4xx responses rather than panics.
//! - [`load`] — a load generator: N concurrent clients, mixed hot/cold
//!   key streams, and a report of throughput, hit rate, and response
//!   byte-identity.
//!
//! The whole design leans on one property established in
//! `enprop_apps::parallel`: configuration `i` of a sweep with seed `s` is
//! measured under `split_seed(s, i)` on a worker-local rig, so a sweep's
//! bytes are a pure function of the request — which is what makes caching
//! *exact* (bitwise), not approximate.

#![warn(missing_docs)]

pub mod cache;
pub mod http;
pub mod load;
pub mod server;

pub use cache::{CacheStatsSnapshot, ResultCache};
pub use load::{run_load, LoadOptions, LoadReport};
pub use server::{ServeConfig, ServeStatsSnapshot, Server, SweepRequest};
