//! DVFS energy/performance trade-off on the simulated Haswell node: the
//! *system-level* decision variable of the bi-objective methods the paper
//! surveys (§II-A), alongside the paper's application-level variables.
//!
//! Sweeps the P-state ladder for a fixed 24-thread DGEMM, audits the
//! resulting (time, dynamic-energy) cloud, and traces the ondemand
//! governor reacting to a bursty utilization profile.
//!
//! ```text
//! cargo run --release --example dvfs_tradeoff
//! ```

use enprop::cpusim::{BlasFlavor, CpuDgemmConfig, CpuSimulator, Partitioning, Pinning};
use enprop::cpusim::dvfs::{DvfsTable, Governor, GovernorSim};
use enprop::ep::BiObjectiveAudit;
use enprop::pareto::BiPoint;
use enprop::units::Hertz;

fn main() {
    let sim = CpuSimulator::haswell();
    let table = DvfsTable::haswell();
    let nominal = *table.nominal(Hertz(2.3e9));
    let cfg = CpuDgemmConfig {
        partitioning: Partitioning::RowWise,
        pinning: Pinning::Scatter,
        groups: 1,
        threads_per_group: 24,
        flavor: BlasFlavor::IntelMkl,
    };
    let n = 8192;

    println!("P-state sweep, MKL DGEMM p=1 t=24, N = {n}:");
    println!("{:>9} {:>7} {:>10} {:>9} {:>10}", "freq", "V", "time[s]", "P_d[W]", "E_d[J]");
    let mut cloud = Vec::new();
    for state in table.states() {
        let run = sim.run_dgemm_at(&cfg, n, state, &nominal);
        println!(
            "{:>7.2}G {:>7.2} {:>10.3} {:>9.1} {:>10.1}",
            state.frequency.value() / 1e9,
            state.voltage,
            run.time.value(),
            run.dynamic_power.value(),
            run.dynamic_energy().value()
        );
        cloud.push(BiPoint::new(run.time.value(), run.dynamic_energy().value()));
    }

    let audit = BiObjectiveAudit::of(&cloud);
    println!("\n{audit}");
    println!(
        "(dynamic energy alone favours low frequency; with a static floor the\n\
         optimum moves up the ladder — the race-to-idle effect)"
    );

    // Governor trace over a bursty load.
    println!("\nondemand governor over a bursty utilization trace:");
    let mut gov = GovernorSim::new(&table, Governor::Ondemand { up_threshold: 0.8 });
    let load = [0.1, 0.2, 0.95, 0.9, 0.3, 0.2, 0.1, 0.85, 0.1, 0.1];
    for (tick, &u) in load.iter().enumerate() {
        let s = gov.step(u);
        println!(
            "  t={tick}: util {:>4.0}% → {:.1} GHz",
            u * 100.0,
            s.frequency.value() / 1e9
        );
    }
}
