//! CUDA-style occupancy calculation.
//!
//! Occupancy — the fraction of an SM's thread slots that a kernel's
//! resident blocks can fill — is the primary architectural mechanism behind
//! the jagged time/power geometry of the paper's (BS, G, R) sweep: the
//! number of resident blocks is the *floor* of three resource ratios, so
//! nearby BS values can differ sharply in occupancy.

use crate::arch::GpuArch;

/// Registers per thread the simple tiled kernels of this toolkit compile
/// to (used when no explicit count is given).
pub const DEFAULT_REGS_PER_THREAD: usize = 32;

/// The occupancy of one kernel configuration on one architecture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Occupancy {
    /// Resident blocks per SM.
    pub blocks_per_sm: usize,
    /// Resident threads per SM (`blocks_per_sm × threads_per_block`).
    pub active_threads_per_sm: usize,
    /// `active_threads_per_sm / max_threads_per_sm` ∈ (0, 1].
    pub fraction: f64,
}

impl Occupancy {
    /// Computes occupancy for a kernel with `threads_per_block` threads and
    /// `shared_bytes_per_block` bytes of per-block shared memory, assuming
    /// [`DEFAULT_REGS_PER_THREAD`] registers per thread.
    ///
    /// Returns `None` when the kernel cannot launch at all: more threads
    /// per block than the hardware limit, or a block's shared memory
    /// exceeding the per-block limit.
    pub fn compute(
        arch: &GpuArch,
        threads_per_block: usize,
        shared_bytes_per_block: usize,
    ) -> Option<Occupancy> {
        Self::compute_with_regs(
            arch,
            threads_per_block,
            shared_bytes_per_block,
            DEFAULT_REGS_PER_THREAD,
        )
    }

    /// Full occupancy calculation with an explicit per-thread register
    /// count — resident blocks are the floor of *four* resource ratios:
    /// the block cap, thread slots, shared memory, and the register file.
    pub fn compute_with_regs(
        arch: &GpuArch,
        threads_per_block: usize,
        shared_bytes_per_block: usize,
        regs_per_thread: usize,
    ) -> Option<Occupancy> {
        if threads_per_block == 0 || threads_per_block > arch.max_threads_per_block {
            return None;
        }
        if shared_bytes_per_block as f64 > arch.shared_mem_per_block.value() {
            return None;
        }
        let by_threads = arch.max_threads_per_sm / threads_per_block;
        let by_shared = if shared_bytes_per_block == 0 {
            usize::MAX
        } else {
            (arch.shared_mem_per_sm.value() / shared_bytes_per_block as f64) as usize
        };
        let by_regs = if regs_per_thread == 0 {
            usize::MAX
        } else {
            arch.registers_per_sm / (regs_per_thread * threads_per_block)
        };
        let blocks = arch.max_blocks_per_sm.min(by_threads).min(by_shared).min(by_regs);
        if blocks == 0 {
            return None;
        }
        let active = blocks * threads_per_block;
        Some(Occupancy {
            blocks_per_sm: blocks,
            active_threads_per_sm: active,
            fraction: active as f64 / arch.max_threads_per_sm as f64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shared memory of the paper's tiled DGEMM: two BS×BS f64 tiles.
    fn shmem(bs: usize) -> usize {
        2 * bs * bs * 8
    }

    #[test]
    fn k40c_bs32_is_fully_occupied() {
        let arch = GpuArch::k40c();
        let o = Occupancy::compute(&arch, 32 * 32, shmem(32)).unwrap();
        // 1024 threads/block: 2048/1024 = 2 blocks; shared 16 KB → 3 blocks;
        // limit = 2 → 2048 active = 100%.
        assert_eq!(o.blocks_per_sm, 2);
        assert_eq!(o.active_threads_per_sm, 2048);
        assert!((o.fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn k40c_bs27_drops_occupancy() {
        // 729 threads/block → floor(2048/729) = 2 blocks → 1458 threads.
        let o = Occupancy::compute(&GpuArch::k40c(), 27 * 27, shmem(27)).unwrap();
        assert_eq!(o.blocks_per_sm, 2);
        assert_eq!(o.active_threads_per_sm, 1458);
        assert!((o.fraction - 1458.0 / 2048.0).abs() < 1e-12);
    }

    #[test]
    fn occupancy_is_jagged_across_bs() {
        // The floor effects make occupancy non-monotone in BS — the paper's
        // cloud geometry depends on this.
        let arch = GpuArch::p100_pcie();
        let f = |bs: usize| Occupancy::compute(&arch, bs * bs, shmem(bs)).unwrap().fraction;
        assert!(f(22) > f(23), "22:{} 23:{}", f(22), f(23));
        assert!(f(26) > f(27), "26:{} 27:{}", f(26), f(27));
        assert!(f(32) > f(27));
    }

    #[test]
    fn tiny_blocks_limited_by_block_count() {
        let arch = GpuArch::k40c();
        // BS=1: one thread per block; 16-block cap → 16 active threads.
        let o = Occupancy::compute(&arch, 1, shmem(1)).unwrap();
        assert_eq!(o.blocks_per_sm, 16);
        assert_eq!(o.active_threads_per_sm, 16);
        assert!(o.fraction < 0.01);
    }

    #[test]
    fn unlaunchable_kernels_rejected() {
        let arch = GpuArch::k40c();
        // 33×33 threads exceeds 1024 per block.
        assert!(Occupancy::compute(&arch, 33 * 33, shmem(33)).is_none());
        // Shared memory beyond the per-block limit.
        assert!(Occupancy::compute(&arch, 256, 49 * 1024 + 1).is_none());
        // Zero threads.
        assert!(Occupancy::compute(&arch, 0, 0).is_none());
    }

    #[test]
    fn register_pressure_limits_occupancy() {
        let arch = GpuArch::k40c();
        // At 32 regs/thread the register file (64k) holds exactly the
        // 2048-thread budget — no extra constraint.
        let base = Occupancy::compute_with_regs(&arch, 256, 0, 32).unwrap();
        assert_eq!(base.active_threads_per_sm, 2048);
        // At 64 regs/thread only 1024 threads fit.
        let heavy = Occupancy::compute_with_regs(&arch, 256, 0, 64).unwrap();
        assert_eq!(heavy.active_threads_per_sm, 1024);
        assert!(heavy.fraction < base.fraction);
        // A block too register-hungry to launch at all.
        assert!(Occupancy::compute_with_regs(&arch, 1024, 0, 128).is_none());
        // Zero means "don't constrain".
        let free = Occupancy::compute_with_regs(&arch, 256, 0, 0).unwrap();
        assert_eq!(free.active_threads_per_sm, 2048);
    }

    #[test]
    fn zero_shared_memory_unconstrained() {
        let arch = GpuArch::p100_pcie();
        let o = Occupancy::compute(&arch, 64, 0).unwrap();
        // 2048/64 = 32 blocks, hitting the 32-block cap exactly.
        assert_eq!(o.blocks_per_sm, 32);
        assert_eq!(o.active_threads_per_sm, 2048);
    }
}
