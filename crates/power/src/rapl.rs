//! Intel RAPL (Running Average Power Limit) energy readings.
//!
//! The paper's related work (Subramaniam & Feng) manages energy
//! proportionality through the RAPL interfaces; and RAPL is the natural
//! on-node replacement for a wall-socket meter when running this toolkit's
//! *real* kernels on real hardware. This module reads the Linux `powercap`
//! sysfs tree (`/sys/class/powercap/intel-rapl:*`), handling the 32/64-bit
//! counter wraparound via each domain's `max_energy_range_uj`.
//!
//! Everything is rooted at a configurable directory so the reader is fully
//! testable against a mock sysfs tree (and so containers with a relocated
//! powercap mount still work).

use crate::error::MeasureError;
use enprop_units::Joules;
use std::path::{Path, PathBuf};

/// One RAPL domain (package, core, uncore, dram, …).
#[derive(Debug, Clone, PartialEq)]
pub struct RaplDomain {
    /// Domain name from sysfs (e.g. `package-0`, `dram`).
    pub name: String,
    /// The domain's sysfs directory.
    path: PathBuf,
    /// Wraparound range of the energy counter, microjoules.
    max_energy_range_uj: u64,
}

impl RaplDomain {
    /// Opens a domain directory; returns `None` when the expected files
    /// are missing or unreadable.
    fn open(path: &Path) -> Option<RaplDomain> {
        let name = std::fs::read_to_string(path.join("name")).ok()?.trim().to_string();
        let max_energy_range_uj = std::fs::read_to_string(path.join("max_energy_range_uj"))
            .ok()?
            .trim()
            .parse()
            .ok()?;
        // Probe the counter once up front so a broken domain is rejected
        // at discovery time.
        std::fs::read_to_string(path.join("energy_uj")).ok()?.trim().parse::<u64>().ok()?;
        Some(RaplDomain { name, path: path.to_path_buf(), max_energy_range_uj })
    }

    /// Reads the raw cumulative energy counter, microjoules.
    pub fn energy_uj(&self) -> std::io::Result<u64> {
        let text = std::fs::read_to_string(self.path.join("energy_uj"))?;
        text.trim().parse().map_err(|e| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, format!("bad energy_uj: {e}"))
        })
    }

    /// Energy elapsed between two counter readings, accounting for at most
    /// one wraparound of the domain counter.
    ///
    /// Fails with [`MeasureError::CounterRangeAnomaly`] when either reading
    /// exceeds the domain's advertised `max_energy_range_uj`: the range
    /// file is stale or misreported, so wraparound correction would be
    /// meaningless (and, before this check existed, the subtraction below
    /// underflowed and aborted the process in debug builds).
    pub fn try_delta(&self, before_uj: u64, after_uj: u64) -> Result<Joules, MeasureError> {
        let range = self.max_energy_range_uj;
        for &reading_uj in &[before_uj, after_uj] {
            if reading_uj > range {
                return Err(MeasureError::CounterRangeAnomaly {
                    domain: self.name.clone(),
                    reading_uj,
                    max_energy_range_uj: range,
                });
            }
        }
        Ok(Joules(wrap_delta_uj(before_uj, after_uj, range) as f64 * 1.0e-6))
    }

    /// Infallible [`try_delta`](Self::try_delta): saturates instead of
    /// erroring when a reading exceeds the advertised range, never
    /// underflows. Prefer `try_delta` where an anomalous range should be
    /// surfaced rather than clamped.
    pub fn delta(&self, before_uj: u64, after_uj: u64) -> Joules {
        Joules(wrap_delta_uj(before_uj, after_uj, self.max_energy_range_uj) as f64 * 1.0e-6)
    }
}

/// Wraparound-corrected counter distance. Saturating on the anomalous
/// `before > range` case (a stale range file) so the subtraction can never
/// underflow; exact for in-range readings.
fn wrap_delta_uj(before_uj: u64, after_uj: u64, range_uj: u64) -> u64 {
    if after_uj >= before_uj {
        after_uj - before_uj
    } else {
        // Wrapped: distance to the range end plus the new value.
        range_uj.saturating_sub(before_uj).saturating_add(after_uj)
    }
}

/// A reader over all discovered RAPL domains.
#[derive(Debug, Clone, PartialEq)]
pub struct RaplReader {
    domains: Vec<RaplDomain>,
}

impl RaplReader {
    /// Discovers domains under the standard sysfs root. Returns `None`
    /// when the host exposes no RAPL (VMs, containers, non-Intel).
    pub fn detect() -> Option<RaplReader> {
        Self::detect_at(Path::new("/sys/class/powercap"))
    }

    /// Discovers domains under a caller-provided powercap root (testing,
    /// relocated mounts). Scans `intel-rapl:*` entries one level deep
    /// (packages and their sub-domains).
    pub fn detect_at(root: &Path) -> Option<RaplReader> {
        let mut domains = Vec::new();
        let entries = std::fs::read_dir(root).ok()?;
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if !name.starts_with("intel-rapl:") {
                continue;
            }
            if let Some(d) = RaplDomain::open(&entry.path()) {
                domains.push(d);
            }
        }
        domains.sort_by(|a, b| a.name.cmp(&b.name));
        if domains.is_empty() {
            None
        } else {
            Some(RaplReader { domains })
        }
    }

    /// The discovered domains.
    pub fn domains(&self) -> &[RaplDomain] {
        &self.domains
    }

    /// Total energy across all domains consumed while `f` runs, plus `f`'s
    /// result. Uses one reading per domain before and after. Counter I/O
    /// failures surface as [`MeasureError::Io`]; readings beyond a domain's
    /// advertised range as [`MeasureError::CounterRangeAnomaly`].
    pub fn measure<T>(&self, f: impl FnOnce() -> T) -> Result<(Joules, T), MeasureError> {
        let before: Vec<u64> =
            self.domains.iter().map(|d| d.energy_uj()).collect::<Result<_, _>>()?;
        let result = f();
        let mut total = Joules::ZERO;
        for (d, &b) in self.domains.iter().zip(&before) {
            let after = d.energy_uj()?;
            total += d.try_delta(b, after)?;
        }
        Ok((total, result))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a mock powercap tree with one domain and returns its root.
    fn mock_tree(tag: &str, energy_uj: u64, range_uj: u64) -> PathBuf {
        let root = std::env::temp_dir().join(format!("enprop-rapl-test-{tag}-{}", std::process::id()));
        let dom = root.join("intel-rapl:0");
        std::fs::create_dir_all(&dom).unwrap();
        std::fs::write(dom.join("name"), "package-0\n").unwrap();
        std::fs::write(dom.join("max_energy_range_uj"), format!("{range_uj}\n")).unwrap();
        std::fs::write(dom.join("energy_uj"), format!("{energy_uj}\n")).unwrap();
        // A non-RAPL sibling that must be ignored.
        std::fs::create_dir_all(root.join("dtpm")).unwrap();
        root
    }

    #[test]
    fn detects_mock_domain() {
        let root = mock_tree("detect", 123_456, 262_143_328_850);
        let reader = RaplReader::detect_at(&root).expect("domain detected");
        assert_eq!(reader.domains().len(), 1);
        assert_eq!(reader.domains()[0].name, "package-0");
        assert_eq!(reader.domains()[0].energy_uj().unwrap(), 123_456);
        std::fs::remove_dir_all(root).ok();
    }

    #[test]
    fn measure_reads_counter_delta() {
        let root = mock_tree("measure", 1_000_000, 1_000_000_000);
        let reader = RaplReader::detect_at(&root).unwrap();
        let dom_file = root.join("intel-rapl:0/energy_uj");
        let (energy, out) = reader
            .measure(|| {
                // The "workload": bump the counter by 2.5 J.
                std::fs::write(&dom_file, "3500000\n").unwrap();
                42
            })
            .unwrap();
        assert_eq!(out, 42);
        assert!((energy.value() - 2.5).abs() < 1e-9, "{energy}");
        std::fs::remove_dir_all(root).ok();
    }

    #[test]
    fn wraparound_handled() {
        let root = mock_tree("wrap", 0, 1_000_000);
        let reader = RaplReader::detect_at(&root).unwrap();
        let d = &reader.domains()[0];
        // before = 900_000 µJ, counter wrapped to 50_000 µJ:
        // delta = (1_000_000 − 900_000) + 50_000 = 150_000 µJ.
        let e = d.delta(900_000, 50_000);
        assert!((e.value() - 0.15).abs() < 1e-12, "{e}");
        // No wrap.
        let e = d.delta(100_000, 400_000);
        assert!((e.value() - 0.3).abs() < 1e-12);
        std::fs::remove_dir_all(root).ok();
    }

    #[test]
    fn wrap_exactly_at_range_boundary() {
        let root = mock_tree("wrap-exact", 0, 1_000_000);
        let reader = RaplReader::detect_at(&root).unwrap();
        let d = &reader.domains()[0];
        // before sits exactly at the range end, counter wrapped to 0:
        // delta = (range − range) + 0 = 0.
        assert_eq!(d.delta(1_000_000, 0), Joules::ZERO);
        assert_eq!(d.try_delta(1_000_000, 0), Ok(Joules::ZERO));
        // ... and wrapped to 250_000 µJ: delta = 0.25 J.
        let e = d.try_delta(1_000_000, 250_000).unwrap();
        assert!((e.value() - 0.25).abs() < 1e-12, "{e}");
        std::fs::remove_dir_all(root).ok();
    }

    #[test]
    fn zero_delta_between_identical_readings() {
        let root = mock_tree("wrap-zero", 0, 1_000_000);
        let reader = RaplReader::detect_at(&root).unwrap();
        let d = &reader.domains()[0];
        assert_eq!(d.delta(400_000, 400_000), Joules::ZERO);
        assert_eq!(d.try_delta(400_000, 400_000), Ok(Joules::ZERO));
        std::fs::remove_dir_all(root).ok();
    }

    #[test]
    fn reading_beyond_stale_range_is_anomaly_not_underflow() {
        let root = mock_tree("wrap-stale", 0, 1_000_000);
        let reader = RaplReader::detect_at(&root).unwrap();
        let d = &reader.domains()[0];
        // A stale/misreported range file: before > max_energy_range_uj.
        // The seed code computed `range − before + after` here, which
        // underflowed (debug panic). Now: saturates in `delta`, errors in
        // `try_delta`.
        let e = d.delta(1_500_000, 100_000);
        assert!((e.value() - 0.1).abs() < 1e-12, "saturated wrap distance, got {e}");
        match d.try_delta(1_500_000, 100_000) {
            Err(MeasureError::CounterRangeAnomaly { domain, reading_uj, max_energy_range_uj }) => {
                assert_eq!(domain, "package-0");
                assert_eq!(reading_uj, 1_500_000);
                assert_eq!(max_energy_range_uj, 1_000_000);
            }
            other => panic!("expected CounterRangeAnomaly, got {other:?}"),
        }
        // `after` beyond the range is just as anomalous.
        assert!(d.try_delta(100_000, 1_500_000).is_err());
        std::fs::remove_dir_all(root).ok();
    }

    #[test]
    fn measure_surfaces_range_anomaly() {
        let root = mock_tree("measure-anomaly", 500_000, 1_000_000);
        let reader = RaplReader::detect_at(&root).unwrap();
        let dom_file = root.join("intel-rapl:0/energy_uj");
        let err = reader
            .measure(|| {
                // Counter "reads" past the advertised range mid-run.
                std::fs::write(&dom_file, "2000000\n").unwrap();
            })
            .unwrap_err();
        assert!(matches!(err, MeasureError::CounterRangeAnomaly { .. }), "{err:?}");
        std::fs::remove_dir_all(root).ok();
    }

    #[test]
    fn missing_tree_yields_none() {
        let bogus = std::env::temp_dir().join("enprop-rapl-test-nonexistent-xyz");
        assert!(RaplReader::detect_at(&bogus).is_none());
    }

    #[test]
    fn malformed_domain_skipped() {
        let root = mock_tree("malformed", 10, 100);
        // A second, broken domain (no energy_uj).
        let broken = root.join("intel-rapl:1");
        std::fs::create_dir_all(&broken).unwrap();
        std::fs::write(broken.join("name"), "package-1\n").unwrap();
        std::fs::write(broken.join("max_energy_range_uj"), "100\n").unwrap();
        let reader = RaplReader::detect_at(&root).unwrap();
        assert_eq!(reader.domains().len(), 1);
        std::fs::remove_dir_all(root).ok();
    }
}
