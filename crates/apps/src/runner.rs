//! The measurement pipeline: kernel profile → power source → simulated
//! meter → statistical stopping rule.
//!
//! This is the software equivalent of the paper's experimental rig: the
//! node with its WattsUp Pro, the HCLWATTSUP session, and the "repeat
//! until the 95% confidence interval is within 2.5%" Student-t loop.

use enprop_power::{ConstantLoad, EnergySession, MeterSpec, PiecewiseLoad, SimulatedWattsUp};
use enprop_stats::protocol::{measure_until_ci, MeasureConfig};
use enprop_units::{Joules, Seconds, Watts};

/// A measured (time, energy) sample with protocol metadata.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredPoint {
    /// Mean execution time.
    pub time: Seconds,
    /// Mean dynamic energy.
    pub dynamic_energy: Joules,
    /// Repetitions used by the stopping rule.
    pub reps: usize,
    /// Whether the stopping rule converged.
    pub converged: bool,
}

/// The measurement rig: one node, one meter, one protocol.
#[derive(Debug)]
pub struct MeasurementRunner {
    session: EnergySession,
    protocol: MeasureConfig,
    /// Relative run-to-run variation of kernel time (cudaEvent jitter and
    /// true execution variation combined).
    time_jitter: f64,
    rng_state: u64,
}

impl MeasurementRunner {
    /// Builds the rig: a node with `idle_power`, a WattsUp-like meter, the
    /// paper's protocol, deterministic under `seed`.
    pub fn new(idle_power: Watts, seed: u64) -> Self {
        let meter = SimulatedWattsUp::new(MeterSpec::default(), idle_power, seed);
        let session = EnergySession::with_baseline_window(meter, Seconds(120.0));
        Self {
            session,
            protocol: MeasureConfig { max_reps: 40, ..MeasureConfig::default() },
            time_jitter: 0.004,
            rng_state: seed ^ 0xA076_1D64_78BD_642F,
        }
    }

    /// Overrides the statistical protocol.
    pub fn with_protocol(mut self, protocol: MeasureConfig) -> Self {
        self.protocol = protocol;
        self
    }

    /// Resets every stochastic component (meter noise, re-captured idle
    /// baseline, time-jitter stream) so the rig behaves exactly as if it
    /// had been freshly built with [`MeasurementRunner::new`] under `seed`.
    ///
    /// The parallel sweep engine reseeds a worker-local runner with a
    /// per-configuration seed before each measurement, which is what makes
    /// sweep output independent of thread count and work order.
    pub fn reseed(&mut self, seed: u64) {
        self.session.reseed(seed);
        self.rng_state = seed ^ 0xA076_1D64_78BD_642F;
    }

    /// Measures one kernel profile: a steady draw of `steady_power` for
    /// `time`, with the warm-up component (`warmup_power` for
    /// `warmup_time`) on top. Returns protocol-converged means.
    pub fn measure(
        &mut self,
        time: Seconds,
        steady_power: Watts,
        warmup_power: Watts,
        warmup_time: Seconds,
    ) -> MeasuredPoint {
        assert!(time.value() > 0.0, "kernel time must be positive");
        assert!(warmup_time <= time, "warm-up cannot outlive the kernel");

        let mut times = Vec::new();
        let session = &mut self.session;
        let jitter = self.time_jitter;
        let rng = &mut self.rng_state;
        let energy = measure_until_ci(self.protocol, || {
            // Run-to-run time variation.
            let f = 1.0 + jitter * gaussian(rng);
            let t = Seconds(time.value() * f);
            let wt = warmup_time.min(t);
            let app = if wt.value() > 0.0 && warmup_power.value() > 0.0 {
                let mut load = PiecewiseLoad::new();
                load.push(wt, steady_power + warmup_power);
                if t > wt {
                    load.push(t - wt, steady_power);
                }
                session.measure(&load).dynamic.value()
            } else {
                session.measure(&ConstantLoad::new(steady_power, t)).dynamic.value()
            };
            times.push(t.value());
            app
        });
        let mean_time = times.iter().sum::<f64>() / times.len() as f64;
        MeasuredPoint {
            time: Seconds(mean_time),
            dynamic_energy: Joules(energy.mean),
            reps: energy.reps,
            converged: energy.converged,
        }
    }
}

/// Box–Muller standard normal on a splitmix stream.
fn gaussian(state: &mut u64) -> f64 {
    let u1 = (unit(state)).max(1e-12);
    let u2 = unit(state);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

fn unit(state: &mut u64) -> f64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_close_to_truth() {
        let mut r = MeasurementRunner::new(Watts(90.0), 7);
        let m = r.measure(Seconds(60.0), Watts(150.0), Watts::ZERO, Seconds::ZERO);
        assert!(m.converged);
        let truth = 150.0 * 60.0;
        assert!(
            (m.dynamic_energy.value() - truth).abs() / truth < 0.05,
            "{m:?} vs {truth}"
        );
        assert!((m.time.value() - 60.0).abs() < 1.0);
    }

    #[test]
    fn warmup_component_adds_energy() {
        let mut r1 = MeasurementRunner::new(Watts(90.0), 3);
        let plain = r1.measure(Seconds(30.0), Watts(150.0), Watts::ZERO, Seconds::ZERO);
        let mut r2 = MeasurementRunner::new(Watts(90.0), 3);
        let warm = r2.measure(Seconds(30.0), Watts(150.0), Watts(58.0), Seconds(2.0));
        let gap = warm.dynamic_energy.value() - plain.dynamic_energy.value();
        assert!((gap - 116.0).abs() < 60.0, "gap {gap}");
    }

    #[test]
    fn deterministic_under_seed() {
        let m1 = MeasurementRunner::new(Watts(90.0), 11).measure(
            Seconds(20.0),
            Watts(120.0),
            Watts(58.0),
            Seconds(1.0),
        );
        let m2 = MeasurementRunner::new(Watts(90.0), 11).measure(
            Seconds(20.0),
            Watts(120.0),
            Watts(58.0),
            Seconds(1.0),
        );
        assert_eq!(m1, m2);
    }

    #[test]
    fn reseed_matches_fresh_runner_bitwise() {
        let mut used = MeasurementRunner::new(Watts(90.0), 2);
        used.measure(Seconds(15.0), Watts(130.0), Watts::ZERO, Seconds::ZERO);
        used.reseed(11);
        let reseeded =
            used.measure(Seconds(20.0), Watts(120.0), Watts(58.0), Seconds(1.0));
        let fresh = MeasurementRunner::new(Watts(90.0), 11).measure(
            Seconds(20.0),
            Watts(120.0),
            Watts(58.0),
            Seconds(1.0),
        );
        assert_eq!(reseeded, fresh);
    }

    #[test]
    #[should_panic(expected = "cannot outlive")]
    fn warmup_longer_than_kernel_rejected() {
        MeasurementRunner::new(Watts(90.0), 1).measure(
            Seconds(1.0),
            Watts(100.0),
            Watts(58.0),
            Seconds(2.0),
        );
    }
}
