//! Static pre-launch validation of kernel launch geometry.
//!
//! Everything here is checked *before any thread runs*: the tile/grid
//! arithmetic of the Fig. 5 DGEMM family and the row-FFT against the
//! architecture's hard limits (shared memory per block, threads per
//! block, occupancy). A violated rule produces a [`Checker::Prelaunch`]
//! [`Finding`] and the driver skips execution entirely — exactly what a
//! real launch would do by failing with `cudaErrorInvalidConfiguration`.
//!
//! [`Checker::Prelaunch`]: crate::report::Checker::Prelaunch

use crate::report::Finding;
use enprop_gpusim::model::{max_group, shared_bytes};
use enprop_gpusim::{GpuArch, Occupancy, TiledDgemmConfig};

/// Validates a tiled-DGEMM launch on `arch`. Empty means launchable.
pub fn check_dgemm(cfg: &TiledDgemmConfig, arch: &GpuArch) -> Vec<Finding> {
    let TiledDgemmConfig { n, bs, g, r } = *cfg;
    let mut out = Vec::new();
    if !(1..=32).contains(&bs) {
        out.push(Finding::launch(
            "tile-range",
            format!("BS={bs} is outside the kernel family's template range 1..=32"),
        ));
        // Every later formula divides by or scales with BS; stop here.
        return out;
    }
    if n == 0 || !n.is_multiple_of(bs) {
        out.push(Finding::launch(
            "tile-divisibility",
            format!(
                "BS={bs} does not divide N={n}: a grid of {}x{} tiles cannot cover the matrix",
                n / bs,
                n / bs
            ),
        ));
    }
    if r < 1 {
        out.push(Finding::launch("runs", format!("R={r} computes no products; R must be >= 1")));
    }
    let mg = max_group(bs);
    if !(1..=8).contains(&g) || g > mg {
        out.push(Finding::launch(
            "group-size",
            format!("G={g} exceeds the shared-memory group budget for BS={bs} (max G={mg})"),
        ));
    }
    let footprint = shared_bytes(bs);
    let limit = arch.shared_mem_per_block.value();
    if footprint as f64 > limit {
        out.push(Finding::launch(
            "shared-footprint",
            format!(
                "BS={bs} tiles need {footprint} B of shared memory per block \
                 but {} provides {limit} B",
                arch.name
            ),
        ));
    }
    let threads = bs * bs;
    if threads > arch.max_threads_per_block {
        out.push(Finding::launch(
            "thread-budget",
            format!(
                "BS={bs} blocks have {threads} threads but {} caps blocks at {}",
                arch.name, arch.max_threads_per_block
            ),
        ));
    }
    if out.is_empty() && Occupancy::compute(arch, threads, footprint).is_none() {
        out.push(Finding::launch(
            "occupancy",
            format!("no resident-block assignment exists for BS={bs} on {}", arch.name),
        ));
    }
    out
}

/// Validates a row-FFT launch (`rows` blocks of `n/2` threads, `2n`
/// doubles of shared memory) on `arch`. Empty means launchable.
pub fn check_fft(n: usize, rows: usize, arch: &GpuArch) -> Vec<Finding> {
    let mut out = Vec::new();
    if n < 2 || !n.is_power_of_two() {
        out.push(Finding::launch(
            "power-of-two",
            format!("FFT length n={n} must be a power of two >= 2"),
        ));
        return out;
    }
    if rows < 1 {
        out.push(Finding::launch("rows", format!("rows={rows} launches no blocks")));
    }
    let threads = n / 2;
    if threads > arch.max_threads_per_block {
        out.push(Finding::launch(
            "thread-budget",
            format!(
                "n={n} needs {threads} threads per block but {} caps blocks at {}",
                arch.name, arch.max_threads_per_block
            ),
        ));
    }
    let footprint = 2 * n * 8;
    let limit = arch.shared_mem_per_block.value();
    if footprint as f64 > limit {
        out.push(Finding::launch(
            "shared-footprint",
            format!(
                "n={n} needs {footprint} B of shared memory per block but {} provides {limit} B",
                arch.name
            ),
        ));
    }
    if out.is_empty() && Occupancy::compute(arch, threads.max(1), footprint).is_none() {
        out.push(Finding::launch(
            "occupancy",
            format!("no resident-block assignment exists for n={n} on {}", arch.name),
        ));
    }
    out
}
