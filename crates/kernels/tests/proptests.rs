//! Property-based tests of the real compute kernels.

use enprop_kernels::{
    dgemm_blocked, dgemm_blocked_mt, dgemm_naive, dgemm_threadgroups, fft2d_parallel,
    fft2d_serial, fft_inplace, ifft_inplace, Complex, Matrix, ThreadgroupConfig,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The threadgroup-parallel product equals the naive product for any
    /// layout of groups and threads that fits the matrix.
    #[test]
    fn threadgroups_match_naive(
        n in 4usize..40,
        p in 1usize..5,
        t in 1usize..5,
        bs in 1usize..12,
        seed in 0u64..100,
    ) {
        prop_assume!(p * t <= n);
        let a = Matrix::filled(n, n, seed);
        let b = Matrix::filled(n, n, seed + 1);
        let mut reference = Matrix::square(n);
        dgemm_naive(1.0, &a, &b, 0.0, &mut reference);

        let mut c = Matrix::square(n);
        let cfg = ThreadgroupConfig { groups: p, threads_per_group: t, block_size: bs };
        let run = dgemm_threadgroups(cfg, &a, &b, &mut c);
        prop_assert!(reference.max_abs_diff(&c) < 1e-9);
        prop_assert_eq!(run.thread_seconds.len(), p * t);
        prop_assert!(run.flops > 0.0);
    }

    /// FFT → IFFT is the identity for any power-of-two length.
    #[test]
    fn fft_identity(log_n in 0u32..10, seed in 0u64..100) {
        let n = 1usize << log_n;
        let m = Matrix::filled(2, n.max(1), seed);
        let signal: Vec<Complex> =
            (0..n).map(|i| Complex::new(m.get(0, i), m.get(1, i))).collect();
        let mut x = signal.clone();
        fft_inplace(&mut x);
        ifft_inplace(&mut x);
        for (a, b) in x.iter().zip(&signal) {
            prop_assert!((a.re - b.re).abs() < 1e-9);
            prop_assert!((a.im - b.im).abs() < 1e-9);
        }
    }

    /// Parseval: energy is preserved (scaled by n) by the forward FFT.
    #[test]
    fn fft_parseval(log_n in 1u32..10, seed in 0u64..100) {
        let n = 1usize << log_n;
        let m = Matrix::filled(2, n, seed);
        let signal: Vec<Complex> =
            (0..n).map(|i| Complex::new(m.get(0, i), m.get(1, i))).collect();
        let time_energy: f64 = signal.iter().map(|c| c.norm_sq()).sum();
        let mut x = signal;
        fft_inplace(&mut x);
        let freq_energy: f64 = x.iter().map(|c| c.norm_sq()).sum::<f64>() / n as f64;
        prop_assert!((time_energy - freq_energy).abs() <= 1e-9 * time_energy.max(1.0));
    }

    /// The parallel 2-D FFT equals the serial one for any thread count.
    #[test]
    fn fft2d_thread_invariance(log_n in 1u32..6, threads in 1usize..9, seed in 0u64..50) {
        let n = 1usize << log_n;
        let re = Matrix::filled(n, n, seed);
        let im = Matrix::filled(n, n, seed + 7);
        let signal: Vec<Complex> = (0..n * n)
            .map(|k| Complex::new(re.as_slice()[k], im.as_slice()[k]))
            .collect();
        let mut serial = signal.clone();
        fft2d_serial(&mut serial, n);
        let mut parallel = signal;
        fft2d_parallel(&mut parallel, n, threads);
        for (a, b) in parallel.iter().zip(&serial) {
            prop_assert!((a.re - b.re).abs() < 1e-10);
            prop_assert!((a.im - b.im).abs() < 1e-10);
        }
    }

    /// The multi-threaded packed DGEMM is *bitwise*-identical to the
    /// serial packed DGEMM for any shape, block size, and thread count.
    #[test]
    fn dgemm_mt_bitwise_thread_invariance(
        m in 1usize..40,
        k in 1usize..24,
        n in 1usize..24,
        bs in 1usize..12,
        threads in 1usize..9,
        seed in 0u64..50,
    ) {
        let a = Matrix::filled(m, k, seed);
        let b = Matrix::filled(k, n, seed + 1);
        let c0 = Matrix::filled(m, n, seed + 2);
        let mut reference = c0.clone();
        dgemm_blocked(
            1.5, a.as_slice(), b.as_slice(), 0.5, reference.as_mut_slice(), m, k, n, bs,
        );
        let mut c = c0.clone();
        dgemm_blocked_mt(
            1.5, a.as_slice(), b.as_slice(), 0.5, c.as_mut_slice(), m, k, n, bs, threads,
        );
        let bits = |s: &[f64]| s.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(bits(reference.as_slice()), bits(c.as_slice()));
    }

    /// The chunk-claiming parallel 2-D FFT is *bitwise*-identical to the
    /// serial one for any thread count (rows are independent transforms).
    #[test]
    fn fft2d_bitwise_thread_invariance(log_n in 1u32..6, threads in 1usize..9, seed in 0u64..50) {
        let n = 1usize << log_n;
        let re = Matrix::filled(n, n, seed);
        let im = Matrix::filled(n, n, seed + 7);
        let signal: Vec<Complex> = (0..n * n)
            .map(|j| Complex::new(re.as_slice()[j], im.as_slice()[j]))
            .collect();
        let mut serial = signal.clone();
        fft2d_serial(&mut serial, n);
        let mut parallel = signal;
        fft2d_parallel(&mut parallel, n, threads);
        for (a, b) in parallel.iter().zip(&serial) {
            prop_assert_eq!(a.re.to_bits(), b.re.to_bits());
            prop_assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
    }

    /// GEMM linearity: scaling α scales the product (β = 0).
    #[test]
    fn gemm_alpha_linearity(n in 2usize..16, alpha in -4.0f64..4.0, seed in 0u64..50) {
        let a = Matrix::filled(n, n, seed);
        let b = Matrix::filled(n, n, seed + 1);
        let mut c1 = Matrix::square(n);
        dgemm_naive(1.0, &a, &b, 0.0, &mut c1);
        let mut c2 = Matrix::square(n);
        dgemm_naive(alpha, &a, &b, 0.0, &mut c2);
        for (x, y) in c1.as_slice().iter().zip(c2.as_slice()) {
            prop_assert!((alpha * x - y).abs() < 1e-9);
        }
    }
}
