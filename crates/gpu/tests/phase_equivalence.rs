//! Phase-interpreter equivalence suite.
//!
//! The cooperative barrier-phase interpreter (PR 3) replaced the
//! OS-thread-per-CUDA-thread engine as the emulator's production engine.
//! This suite is the evidence that nothing observable changed:
//!
//! * emulated tiled DGEMM matches a host reference matmul for **every**
//!   valid `BS ∈ 1..=32` at N = 64 and N = 128;
//! * the emulated row FFT matches the host FFT library;
//! * the phase engine and the legacy engine produce bitwise-identical
//!   memory contents and event counts;
//! * flushed per-block counters reproduce the analytic CUPTI counts
//!   exactly across `BS ∈ {1, 4, 16, 32}`;
//! * a kernel whose threads disagree on phase count fails loudly — the
//!   deadlock-detection property the old `Barrier` gave us for free;
//! * the batched SoA phase bodies (PR 7) are bitwise-identical to the
//!   scalar per-thread loop — results *and* flushed counter totals — for
//!   every valid `BS` at N = 64 and N = 128, at 1/2/8 worker threads,
//!   and under proptest-randomized block shapes.

use enprop_gpusim::cupti::{CuptiCounter, CuptiReport};
use enprop_gpusim::emulator::{
    AccessSink, BlockKernel, Dim2, EmuDgemm, EmuRowFft, EventCounters, GlobalMem, PhaseCtx,
    PhaseOutcome, SimdPath, WavePlan,
};
use enprop_gpusim::TiledDgemmConfig;

/// Deterministic host-side fill (SplitMix64 stream).
fn filled(len: usize, seed: u64) -> Vec<f64> {
    let mut state = seed;
    (0..len)
        .map(|_| {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        })
        .collect()
}

/// Host reference: `C += k · A·B` over `n × n` row-major matrices.
fn reference_matmul(a: &[f64], b: &[f64], c0: &[f64], n: usize, k: f64) -> Vec<f64> {
    let mut out = c0.to_vec();
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0;
            for l in 0..n {
                acc += a[i * n + l] * b[l * n + j];
            }
            out[i * n + j] += k * acc;
        }
    }
    out
}

fn max_err(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
}

/// Every `BS ∈ 1..=32` dividing `n` — the valid emulator configurations.
fn valid_bs(n: usize) -> Vec<usize> {
    (1..=32).filter(|bs| n.is_multiple_of(*bs)).collect()
}

#[test]
fn dgemm_matches_reference_for_every_valid_bs_at_n64() {
    dgemm_reference_sweep(64);
}

#[test]
fn dgemm_matches_reference_for_every_valid_bs_at_n128() {
    dgemm_reference_sweep(128);
}

fn dgemm_reference_sweep(n: usize) {
    let av = filled(n * n, 21);
    let bv = filled(n * n, 22);
    let cv = filled(n * n, 23);
    let expect = reference_matmul(&av, &bv, &cv, n, 1.0);
    for bs in valid_bs(n) {
        let (a, b, c) =
            (GlobalMem::from_slice(&av), GlobalMem::from_slice(&bv), GlobalMem::from_slice(&cv));
        EmuDgemm::new(TiledDgemmConfig { n, bs, g: 1, r: 1 }).run(&a, &b, &c);
        // Error scales with the dot-product length; 1e-9 is ~1e3 ulps at
        // these magnitudes.
        assert!(
            max_err(&c.to_vec(), &expect) < 1e-9,
            "N={n} BS={bs}: phase-interpreted DGEMM diverged from host reference"
        );
    }
}

#[test]
fn dgemm_phase_engine_equals_legacy_engine_bitwise() {
    // Same inputs through both engines: memory contents and event counts
    // must agree bitwise, including compound workloads (G, R > 1).
    for &(n, bs, g, r) in &[(16usize, 4usize, 1usize, 1usize), (16, 8, 2, 1), (8, 2, 2, 2)] {
        let av = filled(n * n, 31);
        let bv = filled(n * n, 32);
        let cv = filled(n * n, 33);
        let emu = EmuDgemm::new(TiledDgemmConfig { n, bs, g, r });

        let (a1, b1, c1) =
            (GlobalMem::from_slice(&av), GlobalMem::from_slice(&bv), GlobalMem::from_slice(&cv));
        let phase_ev = emu.run(&a1, &b1, &c1);

        let (a2, b2, c2) =
            (GlobalMem::from_slice(&av), GlobalMem::from_slice(&bv), GlobalMem::from_slice(&cv));
        let legacy_ev = emu.run_legacy(&a2, &b2, &c2);

        let bits = |m: &GlobalMem| m.to_vec().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&c1), bits(&c2), "n={n} bs={bs} g={g} r={r}: memory diverged");
        assert_eq!(phase_ev, legacy_ev, "n={n} bs={bs} g={g} r={r}: event counts diverged");
    }
}

#[test]
fn fft_phase_engine_matches_host_fft_library() {
    for &(n, rows) in &[(16usize, 4usize), (64, 2), (256, 1)] {
        let host = filled(2 * rows * n, 41);
        let dev = GlobalMem::from_slice(&host);
        EmuRowFft::new(n, rows).run(&dev);
        let got = dev.to_vec();

        for row in 0..rows {
            let base = 2 * row * n;
            let mut x: Vec<enprop_kernels::Complex> = (0..n)
                .map(|i| enprop_kernels::Complex::new(host[base + 2 * i], host[base + 2 * i + 1]))
                .collect();
            enprop_kernels::fft_inplace(&mut x);
            for (i, c) in x.iter().enumerate() {
                assert!((got[base + 2 * i] - c.re).abs() < 1e-9, "n={n} row={row}");
                assert!((got[base + 2 * i + 1] - c.im).abs() < 1e-9, "n={n} row={row}");
            }
        }
    }
}

#[test]
fn fft_phase_engine_equals_legacy_engine_bitwise() {
    let (n, rows) = (32usize, 3usize);
    let host = filled(2 * rows * n, 51);
    let d1 = GlobalMem::from_slice(&host);
    let phase_ev = EmuRowFft::new(n, rows).run(&d1);
    let d2 = GlobalMem::from_slice(&host);
    let legacy_ev = EmuRowFft::new(n, rows).run_legacy(&d2);

    let bits = |m: &GlobalMem| m.to_vec().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&d1), bits(&d2), "FFT memory diverged between engines");
    assert_eq!(phase_ev, legacy_ev, "FFT event counts diverged between engines");
}

#[test]
fn flushed_block_counters_reproduce_analytic_cupti_counts() {
    // Satellite: per-block counters flushed once at retirement must equal
    // the analytic CUPTI counts for BS ∈ {1, 4, 16, 32} (all divide 64).
    let n = 64;
    for &bs in &[1usize, 4, 16, 32] {
        for &(g, r) in &[(1usize, 1usize), (2, 1), (1, 2)] {
            let av = filled(n * n, 61);
            let bv = filled(n * n, 62);
            let (a, b, c) = (
                GlobalMem::from_slice(&av),
                GlobalMem::from_slice(&bv),
                GlobalMem::zeroed(n * n),
            );
            let cfg = TiledDgemmConfig { n, bs, g, r };
            let ev = EmuDgemm::new(cfg).run(&a, &b, &c);
            let rep = CuptiReport::of(&cfg);
            let pairs = [
                (CuptiCounter::FlopCountDp, ev.flops),
                (CuptiCounter::SharedLoad, ev.shared_loads),
                (CuptiCounter::SharedStore, ev.shared_stores),
                (CuptiCounter::GldTransactions, ev.global_loads),
                (CuptiCounter::GstTransactions, ev.global_stores),
                (CuptiCounter::BarrierSync, ev.barriers),
            ];
            for (counter, got) in pairs {
                assert_eq!(
                    rep.get(counter).true_count,
                    got as u128,
                    "{counter:?} mismatch for BS={bs} G={g} R={r}"
                );
            }
        }
    }
}

/// Threads disagree on whether another phase follows: thread 0 keeps
/// syncing, the rest return after phase 0 — on hardware this kernel
/// deadlocks in `__syncthreads`.
struct PhaseCountDivergence;

impl BlockKernel for PhaseCountDivergence {
    type State = ();

    fn block(&self) -> Dim2 {
        Dim2::new(8, 1)
    }

    fn shared_len(&self) -> usize {
        0
    }

    fn init(&self, _bx: usize, _by: usize, _tx: usize, _ty: usize) {}

    fn run_phase<S: AccessSink>(
        &self,
        _phase: usize,
        _s: &mut (),
        ctx: &mut PhaseCtx<'_, S>,
    ) -> PhaseOutcome {
        if ctx.tx == 0 {
            PhaseOutcome::Sync
        } else {
            PhaseOutcome::Done
        }
    }
}

#[test]
#[should_panic(expected = "__syncthreads divergence")]
fn divergent_phase_counts_panic_instead_of_deadlocking() {
    let events = EventCounters::new();
    enprop_gpusim::emulator::run_grid(
        Dim2::new(1, 1),
        &PhaseCountDivergence,
        &events,
        WavePlan::fixed(1),
    );
}

// ---------------------------------------------------------------------
// Batched SoA phase bodies vs the scalar per-thread loop (PR 7). `run`
// takes the batched fast path (`NoSink` is inert); `run_unbatched` pins
// the scalar loop through a transparent probe sink. Equivalence is
// bitwise: output memory AND flushed event-counter totals.
// ---------------------------------------------------------------------

/// One DGEMM config through both paths at a given wave width; asserts
/// bitwise equality of memory and counters.
fn assert_dgemm_batched_equals_scalar(cfg: TiledDgemmConfig, wave: WavePlan) {
    let n = cfg.n;
    let av = filled(n * n, 71);
    let bv = filled(n * n, 72);
    let cv = filled(n * n, 73);
    let emu = EmuDgemm::new(cfg).with_wave(wave);

    let (a1, b1, c1) =
        (GlobalMem::from_slice(&av), GlobalMem::from_slice(&bv), GlobalMem::from_slice(&cv));
    let batched_ev = emu.run(&a1, &b1, &c1);

    let (a2, b2, c2) =
        (GlobalMem::from_slice(&av), GlobalMem::from_slice(&bv), GlobalMem::from_slice(&cv));
    let scalar_ev = emu.run_unbatched(&a2, &b2, &c2);

    let bits = |m: &GlobalMem| m.to_vec().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
    let TiledDgemmConfig { n, bs, g, r } = cfg;
    assert_eq!(bits(&c1), bits(&c2), "n={n} bs={bs} g={g} r={r}: batched memory diverged");
    assert_eq!(batched_ev, scalar_ev, "n={n} bs={bs} g={g} r={r}: batched counters diverged");
}

/// One FFT config through both paths at a given wave width; asserts
/// bitwise equality of memory and counters.
fn assert_fft_batched_equals_scalar(n: usize, rows: usize, wave: WavePlan) {
    let host = filled(2 * rows * n, 81);
    let emu = EmuRowFft::new(n, rows).with_wave(wave);

    let d1 = GlobalMem::from_slice(&host);
    let batched_ev = emu.run(&d1);
    let d2 = GlobalMem::from_slice(&host);
    let scalar_ev = emu.run_unbatched(&d2);

    let bits = |m: &GlobalMem| m.to_vec().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&d1), bits(&d2), "fft n={n} rows={rows}: batched memory diverged");
    assert_eq!(batched_ev, scalar_ev, "fft n={n} rows={rows}: batched counters diverged");
}

#[test]
fn dgemm_batched_equals_scalar_for_every_valid_bs_at_n64() {
    for bs in valid_bs(64) {
        assert_dgemm_batched_equals_scalar(
            TiledDgemmConfig { n: 64, bs, g: 1, r: 1 },
            WavePlan::auto(),
        );
    }
}

#[test]
fn dgemm_batched_equals_scalar_for_every_valid_bs_at_n128() {
    for bs in valid_bs(128) {
        assert_dgemm_batched_equals_scalar(
            TiledDgemmConfig { n: 128, bs, g: 1, r: 1 },
            WavePlan::auto(),
        );
    }
}

#[test]
fn dgemm_batched_equals_scalar_for_compound_workloads() {
    // G > 1 exercises the multi-product group retire path; R > 1 the
    // separator-barrier path; both cross the run-boundary restage.
    for &(n, bs, g, r) in &[(64usize, 16usize, 2usize, 1usize), (64, 16, 1, 2), (32, 8, 2, 2)] {
        assert_dgemm_batched_equals_scalar(
            TiledDgemmConfig { n, bs, g, r },
            WavePlan::auto(),
        );
    }
}

#[test]
fn dgemm_batched_equals_scalar_at_1_2_8_threads() {
    for &w in &[1usize, 2, 8] {
        assert_dgemm_batched_equals_scalar(
            TiledDgemmConfig { n: 64, bs: 16, g: 2, r: 1 },
            WavePlan::fixed(w),
        );
    }
}

#[test]
fn fft_batched_equals_scalar_across_sizes() {
    for &(n, rows) in &[(2usize, 3usize), (8, 4), (64, 2), (128, 2), (256, 1)] {
        assert_fft_batched_equals_scalar(n, rows, WavePlan::auto());
    }
}

#[test]
fn fft_batched_equals_scalar_at_1_2_8_threads() {
    for &w in &[1usize, 2, 8] {
        assert_fft_batched_equals_scalar(64, 4, WavePlan::fixed(w));
    }
}

// ---------------------------------------------------------------------
// Forced-fallback SIMD equivalence (PR 8). The explicit-SIMD batch
// bodies are pinned to each ISA tier the host supports via `with_simd`
// and compared against the scalar interpreter loop — bitwise memory AND
// flushed counters. `SimdPath::available()` returns only host-supported
// tiers, so this sweeps exactly what can run here; on an AVX-512 host
// that is scalar-sse2, avx2 and avx512.
// ---------------------------------------------------------------------

/// One DGEMM config at a pinned SIMD tier vs the scalar interpreter loop.
fn assert_dgemm_simd_tier_equals_scalar(cfg: TiledDgemmConfig, path: SimdPath) {
    let n = cfg.n;
    let av = filled(n * n, 91);
    let bv = filled(n * n, 92);
    let cv = filled(n * n, 93);
    let emu = EmuDgemm::new(cfg).with_simd(path);

    let (a1, b1, c1) =
        (GlobalMem::from_slice(&av), GlobalMem::from_slice(&bv), GlobalMem::from_slice(&cv));
    let tier_ev = emu.run(&a1, &b1, &c1);

    let (a2, b2, c2) =
        (GlobalMem::from_slice(&av), GlobalMem::from_slice(&bv), GlobalMem::from_slice(&cv));
    let scalar_ev = emu.run_unbatched(&a2, &b2, &c2);

    let bits = |m: &GlobalMem| m.to_vec().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
    let TiledDgemmConfig { n, bs, g, r } = cfg;
    assert_eq!(bits(&c1), bits(&c2), "n={n} bs={bs} g={g} r={r} {path}: memory diverged");
    assert_eq!(tier_ev, scalar_ev, "n={n} bs={bs} g={g} r={r} {path}: counters diverged");
}

/// One FFT shape at a pinned SIMD tier vs the scalar interpreter loop.
fn assert_fft_simd_tier_equals_scalar(n: usize, rows: usize, path: SimdPath) {
    let host = filled(2 * rows * n, 94);
    let emu = EmuRowFft::new(n, rows).with_simd(path);

    let d1 = GlobalMem::from_slice(&host);
    let tier_ev = emu.run(&d1);
    let d2 = GlobalMem::from_slice(&host);
    let scalar_ev = emu.run_unbatched(&d2);

    let bits = |m: &GlobalMem| m.to_vec().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&d1), bits(&d2), "fft n={n} rows={rows} {path}: memory diverged");
    assert_eq!(tier_ev, scalar_ev, "fft n={n} rows={rows} {path}: counters diverged");
}

#[test]
fn dgemm_every_simd_tier_equals_scalar() {
    // Lane-multiple BS (16), sub-lane BS (3, shorter than one AVX2
    // vector), and compound G/R shapes crossing the run-boundary restage.
    for path in SimdPath::available() {
        for &(n, bs, g, r) in &[
            (64usize, 16usize, 1usize, 1usize),
            (12, 3, 1, 1),
            (64, 16, 2, 2),
            (32, 8, 2, 1),
        ] {
            assert_dgemm_simd_tier_equals_scalar(TiledDgemmConfig { n, bs, g, r }, path);
        }
    }
}

#[test]
fn fft_every_simd_tier_equals_scalar() {
    // n = 2 keeps `half` below every vector width (pure scalar tail);
    // n = 8 exercises the AVX2 tail after one vector; 64/256 the main
    // vector loops over several stages.
    for path in SimdPath::available() {
        for &(n, rows) in &[(2usize, 3usize), (8, 2), (64, 2), (256, 1)] {
            assert_fft_simd_tier_equals_scalar(n, rows, path);
        }
    }
}

#[test]
fn with_simd_pins_are_clamped_to_host_support() {
    // Requesting a tier above what the host supports must clamp, never
    // crash: the emulator still runs and still matches scalar.
    let cfg = TiledDgemmConfig { n: 16, bs: 4, g: 1, r: 1 };
    let pinned = EmuDgemm::new(cfg).with_simd(SimdPath::Avx512);
    assert!(pinned.simd() <= SimdPath::detect());
    assert_dgemm_simd_tier_equals_scalar(cfg, SimdPath::Avx512);
    assert!(EmuRowFft::new(8, 1).with_simd(SimdPath::Avx512).simd() <= SimdPath::detect());
}

mod batched_proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Random DGEMM block shapes: any divisor BS of a random N,
        /// compound G/R shapes, random wave width — batched must stay
        /// bitwise-identical to scalar.
        #[test]
        fn dgemm_batched_equals_scalar_for_random_shapes(
            n_pow in 3u32..8,             // N ∈ {8, ..., 128}
            bs_sel in 0usize..8,
            g in 1usize..3,
            r in 1usize..3,
            wave_sel in 0usize..4,        // auto, 1, 2, 8
        ) {
            let n = 1usize << n_pow;
            let divisors = valid_bs(n);
            let bs = divisors[bs_sel % divisors.len()];
            let plan = match wave_sel {
                0 => WavePlan::auto(),
                1 => WavePlan::fixed(1),
                2 => WavePlan::fixed(2),
                _ => WavePlan::fixed(8),
            };
            assert_dgemm_batched_equals_scalar(TiledDgemmConfig { n, bs, g, r }, plan);
        }

        /// Random FFT shapes: any power-of-two length and row count.
        #[test]
        fn fft_batched_equals_scalar_for_random_shapes(
            n_pow in 1u32..9,             // n ∈ {2, ..., 256}
            rows in 1usize..5,
            wave_sel in 0usize..4,        // auto, 1, 2, 8
        ) {
            let n = 1usize << n_pow;
            let plan = match wave_sel {
                0 => WavePlan::auto(),
                1 => WavePlan::fixed(1),
                2 => WavePlan::fixed(2),
                _ => WavePlan::fixed(8),
            };
            assert_fft_batched_equals_scalar(n, rows, plan);
        }

        /// Random shapes at a *pinned* SIMD tier: whichever tier the
        /// selector lands on among the host-supported ones must stay
        /// bitwise-identical to the scalar interpreter loop.
        #[test]
        fn dgemm_pinned_simd_tier_equals_scalar_for_random_shapes(
            n_pow in 3u32..8,             // N ∈ {8, ..., 128}
            bs_sel in 0usize..8,
            g in 1usize..3,
            tier_sel in 0usize..3,
        ) {
            let n = 1usize << n_pow;
            let divisors = valid_bs(n);
            let bs = divisors[bs_sel % divisors.len()];
            let tiers = SimdPath::available();
            let path = tiers[tier_sel % tiers.len()];
            assert_dgemm_simd_tier_equals_scalar(
                TiledDgemmConfig { n, bs, g, r: 1 },
                path,
            );
        }

        /// Random FFT shapes at a pinned SIMD tier.
        #[test]
        fn fft_pinned_simd_tier_equals_scalar_for_random_shapes(
            n_pow in 1u32..9,             // n ∈ {2, ..., 256}
            rows in 1usize..4,
            tier_sel in 0usize..3,
        ) {
            let n = 1usize << n_pow;
            let tiers = SimdPath::available();
            let path = tiers[tier_sel % tiers.len()];
            assert_fft_simd_tier_equals_scalar(n, rows, path);
        }
    }
}
