//! The recording probe: a vetoing [`AccessSink`] that captures every
//! access of a (deliberately tiny) instrumented launch.
//!
//! Probing is the analyzer's only contact with execution. A probe run
//! records, per block, the exact `(phase, space, buffer, kind, thread,
//! index)` stream the scalar interpreter produces; [`crate::affine`]
//! then fits closed forms to those streams and *verifies* the fit on
//! every recorded access. Out-of-bounds accesses are vetoed (recorded,
//! then suppressed) exactly like the dynamic sanitizer's monitor, so
//! buggy kernels survive probing long enough to be summarized.

use enprop_gpusim::emulator::{
    run_grid_monitored, AccessPoint, AccessSink, BlockExit, BlockKernel, BufId, Dim2, EmuDgemm,
    EmuEvents, EventCounters, GlobalMem,
};
use enprop_gpusim::TiledDgemmConfig;
use enprop_sanitize::report::{AccessKind, MemSpace};

/// One recorded access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeAccess {
    /// Barrier phase the access executed in.
    pub phase: usize,
    /// Shared or global memory.
    pub space: MemSpace,
    /// Global allocation identity (`None` for shared memory).
    pub buf: Option<BufId>,
    /// Load or store.
    pub kind: AccessKind,
    /// Thread x coordinate.
    pub tx: usize,
    /// Thread y coordinate.
    pub ty: usize,
    /// The accessed index — possibly out of bounds (the probe vetoes
    /// such accesses but still records them).
    pub idx: usize,
}

/// Everything recorded about one block of a probed launch.
#[derive(Debug, Clone)]
pub struct BlockProbe {
    /// Block x coordinate.
    pub bx: usize,
    /// Block y coordinate.
    pub by: usize,
    /// Every access the block performed, in interpreter order.
    pub accesses: Vec<ProbeAccess>,
    /// How the block exited (retired or diverged).
    pub exit: BlockExit,
}

/// The recording sink. `INERT`/`BULK` both stay `false`, so the
/// interpreter always takes the per-access scalar loop and the sink sees
/// (and may veto) every access individually.
#[derive(Debug, Default)]
pub struct ProbeSink {
    accesses: Vec<ProbeAccess>,
}

impl ProbeSink {
    /// Consumes the sink, yielding the recorded accesses in order.
    pub fn into_accesses(self) -> Vec<ProbeAccess> {
        self.accesses
    }

    fn record(
        &mut self,
        at: AccessPoint,
        space: MemSpace,
        buf: Option<BufId>,
        kind: AccessKind,
        idx: usize,
        len: usize,
    ) -> bool {
        self.accesses
            .push(ProbeAccess { phase: at.phase, space, buf, kind, tx: at.tx, ty: at.ty, idx });
        // Veto (suppress) out-of-bounds accesses so broken kernels keep
        // running: the record above is what the OOB check consumes.
        idx < len
    }
}

impl AccessSink for ProbeSink {
    fn shared_load(&mut self, at: AccessPoint, idx: usize, len: usize) -> bool {
        self.record(at, MemSpace::Shared, None, AccessKind::Read, idx, len)
    }

    fn shared_store(&mut self, at: AccessPoint, idx: usize, len: usize) -> bool {
        self.record(at, MemSpace::Shared, None, AccessKind::Write, idx, len)
    }

    fn global_load(&mut self, at: AccessPoint, buf: BufId, idx: usize, len: usize) -> bool {
        self.record(at, MemSpace::Global, Some(buf), AccessKind::Read, idx, len)
    }

    fn global_store(&mut self, at: AccessPoint, buf: BufId, idx: usize, len: usize) -> bool {
        self.record(at, MemSpace::Global, Some(buf), AccessKind::Write, idx, len)
    }
}

/// Runs `kernel` over `grid` fully instrumented, returning every block's
/// recorded access stream and exit, plus the launch's flushed event
/// counters.
pub fn probe_grid<K: BlockKernel>(grid: Dim2, kernel: &K) -> (Vec<BlockProbe>, EmuEvents) {
    let events = EventCounters::new();
    let mut blocks = Vec::with_capacity(grid.x * grid.y);
    run_grid_monitored(
        grid,
        kernel,
        &events,
        |_, _| ProbeSink::default(),
        |bx, by, sink: ProbeSink, exit| {
            blocks.push(BlockProbe { bx, by, accesses: sink.accesses, exit });
        },
    );
    (blocks, events.snapshot())
}

/// Probes one executable DGEMM config (requires `BS | N`): every block's
/// access stream, the flushed event counters, and the `(id, name, len)`
/// buffer registry in A/B/C order.
pub fn probe_grid_dgemm(
    cfg: TiledDgemmConfig,
) -> (Vec<BlockProbe>, EmuEvents, Vec<(BufId, String, usize)>) {
    let zeros = vec![0.0; cfg.n * cfg.n];
    let a = GlobalMem::from_slice(&zeros);
    let b = GlobalMem::from_slice(&zeros);
    let c = GlobalMem::from_slice(&zeros);
    let mut blocks = Vec::new();
    let events = EmuDgemm::new(cfg).run_monitored(
        &a,
        &b,
        &c,
        |_, _| ProbeSink::default(),
        |bx, by, sink: ProbeSink, exit| {
            blocks.push(BlockProbe { bx, by, accesses: sink.accesses, exit });
        },
    );
    let registry = [(&a, "A"), (&b, "B"), (&c, "C")]
        .iter()
        .map(|(buf, name)| (buf.id(), name.to_string(), cfg.n * cfg.n))
        .collect();
    (blocks, events, registry)
}
