#![warn(missing_docs)]

//! The reproduction harness: one generator per paper table/figure.
//!
//! Every generator returns a plain serializable struct holding exactly the
//! rows/series the paper's artifact reports, so that
//!
//! * the `repro` binary can print them (and dump JSON for EXPERIMENTS.md),
//! * the Criterion benches can regenerate them under timing,
//! * the integration tests can assert the paper's qualitative claims.
//!
//! | Generator | Paper artifact |
//! |---|---|
//! | [`figures::table1`] | Table I (platform specifications) |
//! | [`figures::fig1`] | Fig. 1 (strong EP: `E_d` vs `W`, three processors) |
//! | [`figures::fig2`] | Fig. 2 (P100 weak EP + Pareto regions, N = 18432) |
//! | [`figures::fig4`] | Fig. 4 (CPU power/performance vs utilization, N = 17408) |
//! | [`figures::fig6`] | Fig. 6 (dynamic-energy non-additivity in G) |
//! | [`figures::fig7`] | Fig. 7 (K40c local Pareto fronts, N = 8704/10240) |
//! | [`figures::fig8`] | Fig. 8 (P100 global Pareto fronts, N = 10240/14336) |
//! | [`figures::theory`] | §III Eqs. 1–3 (two-core nonproportionality) |
//! | [`figures::headline`] | §I/§V headline savings/degradation pairs |

pub mod figures;
pub mod render;
pub mod scatter;

pub use figures::{ablations, fig1, fig2, fig4, fig6, fig7, fig8, headline, sensitivity, table1, theory};
