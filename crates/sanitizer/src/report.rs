//! Finding types: the structured diagnostics every checker emits.
//!
//! A [`Finding`] couples a machine-readable [`FindingKind`] (serialized
//! into the JSON report) with a canonical one-line `message` rendered at
//! construction time. The message is part of the crate's contract — the
//! fixture tests snapshot it verbatim — so the constructors here are the
//! single place diagnostics are worded.

use enprop_gpusim::emulator::AccessPoint;
use serde::Serialize;
use std::fmt;

/// Which analysis produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Checker {
    /// Same-phase conflicting accesses by different threads (or any
    /// conflicting accesses by different blocks).
    Racecheck,
    /// Out-of-bounds and uninitialized-read detection.
    Memcheck,
    /// Barrier divergence: threads disagreeing on the phase count.
    Synccheck,
    /// Static launch-geometry validation, before any thread runs.
    Prelaunch,
}

impl Checker {
    /// Lower-case tool-style name (`racecheck`, `memcheck`, ...).
    pub fn as_str(self) -> &'static str {
        match self {
            Checker::Racecheck => "racecheck",
            Checker::Memcheck => "memcheck",
            Checker::Synccheck => "synccheck",
            Checker::Prelaunch => "prelaunch",
        }
    }
}

/// Which emulated memory an access touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum MemSpace {
    /// Per-block shared memory.
    Shared,
    /// Device global memory.
    Global,
}

impl MemSpace {
    /// Lower-case name.
    pub fn as_str(self) -> &'static str {
        match self {
            MemSpace::Shared => "shared",
            MemSpace::Global => "global",
        }
    }
}

/// Load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

impl AccessKind {
    /// Lower-case name.
    pub fn as_str(self) -> &'static str {
        match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
        }
    }
}

/// `write-write` when both accesses store, `read-write` otherwise.
fn hazard_label(a: AccessKind, b: AccessKind) -> &'static str {
    if a == AccessKind::Write && b == AccessKind::Write {
        "write-write"
    } else {
        "read-write"
    }
}

/// `"cell 5"` for shared memory, `"A[5]"` for a registered global buffer.
fn cell_label(space: MemSpace, buffer: Option<&str>, cell: usize) -> String {
    match (space, buffer) {
        (MemSpace::Shared, _) => format!("cell {cell}"),
        (MemSpace::Global, Some(name)) => format!("{name}[{cell}]"),
        (MemSpace::Global, None) => format!("unregistered[{cell}]"),
    }
}

/// The machine-readable payload of one diagnostic.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum FindingKind {
    /// Two threads of the same block touched the same cell in the same
    /// barrier phase, at least one writing — no `__syncthreads` orders
    /// them. `second` is the access that exposed the hazard, `first` the
    /// recorded earlier access.
    Race {
        /// Memory space of the cell.
        space: MemSpace,
        /// Registered buffer name (global memory only).
        buffer: Option<String>,
        /// Cell index within the allocation.
        cell: usize,
        /// The earlier access's kind.
        first_kind: AccessKind,
        /// The earlier access's thread `(tx, ty)`.
        first_thread: (usize, usize),
        /// The exposing access's kind.
        second_kind: AccessKind,
        /// The exposing access's thread `(tx, ty)`.
        second_thread: (usize, usize),
    },
    /// Two different blocks touched the same global cell, at least one
    /// writing. Blocks cannot synchronize within a launch, so this is a
    /// hazard regardless of phase.
    InterBlockRace {
        /// Registered buffer name.
        buffer: Option<String>,
        /// Cell index within the allocation.
        cell: usize,
        /// The earlier block's access kind.
        first_kind: AccessKind,
        /// The earlier block `(bx, by)`.
        first_block: (usize, usize),
        /// The exposing block's access kind.
        second_kind: AccessKind,
        /// The exposing block `(bx, by)`.
        second_block: (usize, usize),
    },
    /// An access past the end of an allocation (suppressed by the
    /// sanitizer, so execution continues).
    OutOfBounds {
        /// Memory space of the access.
        space: MemSpace,
        /// Registered buffer name (global memory only).
        buffer: Option<String>,
        /// Load or store.
        kind: AccessKind,
        /// The offending index.
        index: usize,
        /// The allocation length.
        len: usize,
    },
    /// A shared-memory cell was read but never written by any thread of
    /// the block over its whole execution.
    UninitRead {
        /// The cell index.
        cell: usize,
        /// The first reading thread `(tx, ty)`.
        thread: (usize, usize),
    },
    /// Threads of a block disagreed on whether another phase follows —
    /// `__syncthreads` was not reached uniformly.
    BarrierDivergence {
        /// Threads that reached the barrier.
        synced: usize,
        /// Threads that returned from the kernel instead.
        returned: usize,
        /// The first thread `(tx, ty)` that retired early.
        first_early: (usize, usize),
    },
    /// A launch-geometry rule violated before any thread ran.
    Launch {
        /// Short rule identifier (e.g. `shared-footprint`).
        rule: String,
        /// Human-readable explanation.
        detail: String,
    },
}

/// One diagnostic: checker, attribution, payload, and the canonical
/// one-line rendering.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Finding {
    /// The checker that produced it.
    pub checker: Checker,
    /// Block attribution `(bx, by)`; `None` for launch-level findings.
    pub block: Option<(usize, usize)>,
    /// Phase attribution; `None` for launch-level and inter-block findings.
    pub phase: Option<usize>,
    /// The machine-readable payload.
    pub kind: FindingKind,
    /// The canonical one-line rendering (stable; snapshot-tested).
    pub message: String,
}

impl Finding {
    /// An intra-block race: `second` (the current access) conflicts with
    /// the recorded `first` access to the same cell in the same phase.
    pub fn race(
        space: MemSpace,
        buffer: Option<&str>,
        cell: usize,
        second: AccessPoint,
        second_kind: AccessKind,
        first_thread: (usize, usize),
        first_kind: AccessKind,
    ) -> Self {
        let message = format!(
            "racecheck: {} {} hazard on {} in phase {} of block ({}, {}): \
             {} by thread ({}, {}) conflicts with {} by thread ({}, {}) \
             with no __syncthreads between them",
            space.as_str(),
            hazard_label(first_kind, second_kind),
            cell_label(space, buffer, cell),
            second.phase,
            second.bx,
            second.by,
            second_kind.as_str(),
            second.tx,
            second.ty,
            first_kind.as_str(),
            first_thread.0,
            first_thread.1,
        );
        Finding {
            checker: Checker::Racecheck,
            block: Some(second.block()),
            phase: Some(second.phase),
            kind: FindingKind::Race {
                space,
                buffer: buffer.map(str::to_owned),
                cell,
                first_kind,
                first_thread,
                second_kind,
                second_thread: second.thread(),
            },
            message,
        }
    }

    /// An inter-block race on a global cell.
    pub fn inter_block_race(
        buffer: Option<&str>,
        cell: usize,
        second_block: (usize, usize),
        second_kind: AccessKind,
        first_block: (usize, usize),
        first_kind: AccessKind,
    ) -> Self {
        let message = format!(
            "racecheck: inter-block {} hazard on {}: {} by block ({}, {}) \
             conflicts with {} by block ({}, {}) — thread blocks cannot \
             synchronize within a launch",
            hazard_label(first_kind, second_kind),
            cell_label(MemSpace::Global, buffer, cell),
            second_kind.as_str(),
            second_block.0,
            second_block.1,
            first_kind.as_str(),
            first_block.0,
            first_block.1,
        );
        Finding {
            checker: Checker::Racecheck,
            block: Some(second_block),
            phase: None,
            kind: FindingKind::InterBlockRace {
                buffer: buffer.map(str::to_owned),
                cell,
                first_kind,
                first_block,
                second_kind,
                second_block,
            },
            message,
        }
    }

    /// An out-of-bounds access (suppressed, so the run continues).
    pub fn oob(
        space: MemSpace,
        buffer: Option<&str>,
        at: AccessPoint,
        kind: AccessKind,
        index: usize,
        len: usize,
    ) -> Self {
        let target = match (space, buffer) {
            (MemSpace::Global, Some(name)) => format!(" on {name}"),
            (MemSpace::Global, None) => " on unregistered buffer".to_string(),
            (MemSpace::Shared, _) => String::new(),
        };
        let message = format!(
            "memcheck: {} {} out of bounds{target}: index {index} >= len {len} \
             by thread ({}, {}) of block ({}, {}) in phase {}",
            space.as_str(),
            kind.as_str(),
            at.tx,
            at.ty,
            at.bx,
            at.by,
            at.phase,
        );
        Finding {
            checker: Checker::Memcheck,
            block: Some(at.block()),
            phase: Some(at.phase),
            kind: FindingKind::OutOfBounds {
                space,
                buffer: buffer.map(str::to_owned),
                kind,
                index,
                len,
            },
            message,
        }
    }

    /// A read of a shared cell no thread of the block ever writes.
    pub fn uninit_read(cell: usize, at: AccessPoint) -> Self {
        let message = format!(
            "memcheck: uninitialized shared read of cell {cell} by thread \
             ({}, {}) of block ({}, {}) in phase {}: no thread of the block \
             ever writes it",
            at.tx, at.ty, at.bx, at.by, at.phase,
        );
        Finding {
            checker: Checker::Memcheck,
            block: Some(at.block()),
            phase: Some(at.phase),
            kind: FindingKind::UninitRead { cell, thread: at.thread() },
            message,
        }
    }

    /// A barrier divergence reported by the monitored interpreter.
    pub fn divergence(
        bx: usize,
        by: usize,
        phase: usize,
        synced: &[(usize, usize)],
        returned: &[(usize, usize)],
    ) -> Self {
        let first_early = returned.first().copied().unwrap_or((0, 0));
        let message = format!(
            "synccheck: barrier divergence in phase {phase} of block \
             ({bx}, {by}): {} thread(s) reached __syncthreads while {} \
             returned early; first early exit: thread ({}, {}) — this \
             kernel deadlocks on real hardware",
            synced.len(),
            returned.len(),
            first_early.0,
            first_early.1,
        );
        Finding {
            checker: Checker::Synccheck,
            block: Some((bx, by)),
            phase: Some(phase),
            kind: FindingKind::BarrierDivergence {
                synced: synced.len(),
                returned: returned.len(),
                first_early,
            },
            message,
        }
    }

    /// A launch-geometry violation caught before execution.
    pub fn launch(rule: &str, detail: String) -> Self {
        let message = format!("prelaunch: {rule}: {detail}");
        Finding {
            checker: Checker::Prelaunch,
            block: None,
            phase: None,
            kind: FindingKind::Launch { rule: rule.to_string(), detail },
            message,
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}
