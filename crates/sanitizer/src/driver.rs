//! Drivers: sanitize one kernel launch, or sweep every shipped
//! configuration, into machine-readable reports.
//!
//! Each driver validates the launch geometry first ([`crate::prelaunch`]);
//! only a launchable configuration is executed, under a
//! [`LaunchMonitor`] via the emulator's monitored interpreter. Buffers
//! are filled deterministically (SplitMix64), blocks run serially in
//! row-major order, and every diagnostic names buffers by their
//! registered name — so a report is bit-for-bit reproducible across runs
//! and machines.

use crate::monitor::{BufferTable, LaunchMonitor};
use crate::prelaunch;
use crate::report::Finding;
use enprop_gpusim::emulator::{
    run_grid_monitored_sampled, BlockKernel, Dim2, EmuDgemm, EmuRowFft, EventCounters, GlobalMem,
};
use enprop_gpusim::model::max_group;
use enprop_gpusim::{GpuArch, TiledDgemmConfig};
use serde::Serialize;

/// Deterministic 1-in-k block sampling for production-scale sanitizing.
///
/// Selection is a pure function of the run seed and the block's linear
/// index (SplitMix64 finalizer, `hash % k == 0`), so a given
/// `(seed, k, launch)` always monitors the same blocks — reports stay
/// bit-for-bit reproducible across runs and machines, exactly like full
/// monitoring. [`SampleSpec::full`] (k = 1) monitors every block and is
/// the default everywhere.
///
/// Sampling trades checker *coverage* for speed: unselected blocks run on
/// the uninstrumented (batched) fast path, so intra-block hazards in them
/// and inter-block hazards involving only unselected blocks go unseen.
/// The kernels' block-symmetric structure makes one monitored block
/// representative; see DESIGN.md for the full soundness argument. The
/// drivers guarantee every launch monitors at least one block (via
/// [`SampleSpec::fallback_block`], when the hash selects none of a small
/// grid), and the self-test corpus always runs unsampled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use]
pub struct SampleSpec {
    k: u64,
    seed: u64,
}

impl SampleSpec {
    /// Full monitoring: every block is selected (`k = 1`).
    pub fn full() -> Self {
        Self { k: 1, seed: 0 }
    }

    /// Monitor one block in `k`, selected deterministically from `seed`.
    /// `k = 1` (or 0) degrades to full monitoring.
    pub fn one_in(k: u64, seed: u64) -> Self {
        Self { k: k.max(1), seed }
    }

    /// The sampling rate denominator (1 = full monitoring).
    pub fn rate(&self) -> u64 {
        self.k
    }

    /// Whether every block is monitored.
    pub fn is_full(&self) -> bool {
        self.k <= 1
    }

    /// Whether block `(bx, by)` of a grid `grid_x` blocks wide is
    /// monitored. Pure and deterministic in `(seed, k, index)`.
    pub fn selects(&self, grid_x: usize, bx: usize, by: usize) -> bool {
        self.k <= 1 || self.hash(grid_x, bx, by).is_multiple_of(self.k)
    }

    /// The block a driver must monitor anyway when the hash selects no
    /// block of a `grid_x × grid_y` grid (small grids under large `k`):
    /// the minimal-hash block, so the choice is as deterministic as
    /// [`selects`](SampleSpec::selects) itself. `None` when at least one
    /// block is already selected — every launch thus monitors ≥ 1 block.
    pub fn fallback_block(&self, grid_x: usize, grid_y: usize) -> Option<(usize, usize)> {
        if self.k <= 1 {
            return None;
        }
        let mut best = (0usize, 0usize);
        let mut best_hash = u64::MAX;
        for by in 0..grid_y {
            for bx in 0..grid_x {
                let h = self.hash(grid_x, bx, by);
                if h.is_multiple_of(self.k) {
                    return None;
                }
                if h < best_hash {
                    best_hash = h;
                    best = (bx, by);
                }
            }
        }
        Some(best)
    }

    /// SplitMix64 finalizer over the block's linear index, keyed by the
    /// run seed.
    fn hash(&self, grid_x: usize, bx: usize, by: usize) -> u64 {
        let lin = (by * grid_x + bx) as u64;
        let mut z = self.seed ^ lin.wrapping_mul(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        z
    }
}

/// The sanitized outcome of one kernel launch (or of its rejected
/// pre-launch validation, in which case `blocks == 0`).
#[derive(Debug, Clone, Serialize)]
pub struct KernelReport {
    /// Human-readable launch label, e.g. `dgemm N=64 BS=16 G=2 R=1`.
    pub kernel: String,
    /// Thread blocks executed (0 when pre-launch validation rejected).
    pub blocks: usize,
    /// Thread blocks that ran under the monitor (`== blocks` when
    /// monitoring is full; fewer under [`SampleSpec`] sampling).
    pub monitored_blocks: usize,
    /// Every finding, in deterministic discovery order.
    pub findings: Vec<Finding>,
    /// Findings dropped past the per-launch reporting cap.
    pub suppressed: usize,
}

impl KernelReport {
    /// No findings, none suppressed.
    pub fn clean(&self) -> bool {
        self.findings.is_empty() && self.suppressed == 0
    }
}

/// A full sweep: every configuration's [`KernelReport`] on one
/// architecture.
#[derive(Debug, Clone, Serialize)]
pub struct SanitizeReport {
    /// The architecture the geometry was validated against.
    pub arch: String,
    /// One report per launch, in sweep order.
    pub kernels: Vec<KernelReport>,
}

impl SanitizeReport {
    /// Total findings across all launches, including suppressed ones.
    pub fn total_findings(&self) -> usize {
        self.kernels.iter().map(|k| k.findings.len() + k.suppressed).sum()
    }

    /// Every launch clean?
    pub fn clean(&self) -> bool {
        self.kernels.iter().all(KernelReport::clean)
    }
}

/// Deterministic SplitMix64 fill in `[-1, 1)`.
pub(crate) fn fill(len: usize, seed: u64) -> Vec<f64> {
    let mut state = seed;
    (0..len)
        .map(|_| {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        })
        .collect()
}

/// Runs an arbitrary [`BlockKernel`] under a fresh [`LaunchMonitor`] and
/// packages the outcome. The generic entry point the shipped-kernel
/// drivers and the seeded fixtures share; every block is monitored.
pub fn sanitize_kernel<K: BlockKernel>(
    label: &str,
    grid: Dim2,
    kernel: &K,
    table: BufferTable,
) -> KernelReport {
    sanitize_kernel_sampled(label, grid, kernel, table, SampleSpec::full())
}

/// [`sanitize_kernel`] under a [`SampleSpec`]: only selected blocks run
/// instrumented; the rest take the uninstrumented (batched) fast path and
/// are invisible to the checkers.
pub fn sanitize_kernel_sampled<K: BlockKernel>(
    label: &str,
    grid: Dim2,
    kernel: &K,
    table: BufferTable,
    sample: SampleSpec,
) -> KernelReport {
    let monitor = LaunchMonitor::new(table, kernel.shared_len());
    let events = EventCounters::new();
    let fallback = sample.fallback_block(grid.x, grid.y);
    let mut monitored = 0usize;
    run_grid_monitored_sampled(
        grid,
        kernel,
        &events,
        |bx, by| sample.selects(grid.x, bx, by) || fallback == Some((bx, by)),
        |_, _| {
            monitored += 1;
            monitor.begin_block();
            monitor.sink()
        },
        |bx, by, _sink, exit| monitor.end_block(bx, by, &exit),
    );
    let out = monitor.finish();
    KernelReport {
        kernel: label.to_string(),
        blocks: grid.count(),
        monitored_blocks: monitored,
        findings: out.findings,
        suppressed: out.suppressed,
    }
}

/// Sanitizes one tiled-DGEMM launch: pre-launch geometry validation, then
/// (if launchable) a fully monitored execution over deterministic inputs.
pub fn sanitize_dgemm(cfg: TiledDgemmConfig, arch: &GpuArch) -> KernelReport {
    sanitize_dgemm_sampled(cfg, arch, SampleSpec::full())
}

/// [`sanitize_dgemm`] under a [`SampleSpec`].
pub fn sanitize_dgemm_sampled(
    cfg: TiledDgemmConfig,
    arch: &GpuArch,
    sample: SampleSpec,
) -> KernelReport {
    let label = format!("dgemm N={} BS={} G={} R={}", cfg.n, cfg.bs, cfg.g, cfg.r);
    let findings = prelaunch::check_dgemm(&cfg, arch);
    if !findings.is_empty() {
        return KernelReport {
            kernel: label,
            blocks: 0,
            monitored_blocks: 0,
            findings,
            suppressed: 0,
        };
    }

    let n = cfg.n;
    let a = GlobalMem::from_slice(&fill(n * n, 0xA11CE));
    let b = GlobalMem::from_slice(&fill(n * n, 0xB0B5));
    let c = GlobalMem::from_slice(&fill(n * n, 0xCAFE));
    let mut table = BufferTable::new();
    table.register(a.id(), "A", n * n);
    table.register(b.id(), "B", n * n);
    table.register(c.id(), "C", n * n);

    let tiles = n / cfg.bs;
    let monitor = LaunchMonitor::new(table, 2 * cfg.bs * cfg.bs);
    let fallback = sample.fallback_block(tiles, tiles);
    let mut monitored = 0usize;
    EmuDgemm::new(cfg).run_monitored_sampled(
        &a,
        &b,
        &c,
        |bx, by| sample.selects(tiles, bx, by) || fallback == Some((bx, by)),
        |_, _| {
            monitored += 1;
            monitor.begin_block();
            monitor.sink()
        },
        |bx, by, _sink, exit| monitor.end_block(bx, by, &exit),
    );
    let out = monitor.finish();
    KernelReport {
        kernel: label,
        blocks: tiles * tiles,
        monitored_blocks: monitored,
        findings: out.findings,
        suppressed: out.suppressed,
    }
}

/// Sanitizes one row-FFT launch, analogously to [`sanitize_dgemm`].
pub fn sanitize_fft(n: usize, rows: usize, arch: &GpuArch) -> KernelReport {
    sanitize_fft_sampled(n, rows, arch, SampleSpec::full())
}

/// [`sanitize_fft`] under a [`SampleSpec`].
pub fn sanitize_fft_sampled(
    n: usize,
    rows: usize,
    arch: &GpuArch,
    sample: SampleSpec,
) -> KernelReport {
    let label = format!("fft n={n} rows={rows}");
    let findings = prelaunch::check_fft(n, rows, arch);
    if !findings.is_empty() {
        return KernelReport {
            kernel: label,
            blocks: 0,
            monitored_blocks: 0,
            findings,
            suppressed: 0,
        };
    }

    let data = GlobalMem::from_slice(&fill(2 * rows * n, 0xF0F7));
    let mut table = BufferTable::new();
    table.register(data.id(), "signal", 2 * rows * n);

    let monitor = LaunchMonitor::new(table, 2 * n);
    let fallback = sample.fallback_block(1, rows);
    let mut monitored = 0usize;
    EmuRowFft::new(n, rows).run_monitored_sampled(
        &data,
        |bx, by| sample.selects(1, bx, by) || fallback == Some((bx, by)),
        |_, _| {
            monitored += 1;
            monitor.begin_block();
            monitor.sink()
        },
        |bx, by, _sink, exit| monitor.end_block(bx, by, &exit),
    );
    let out = monitor.finish();
    KernelReport {
        kernel: label,
        blocks: rows,
        monitored_blocks: monitored,
        findings: out.findings,
        suppressed: out.suppressed,
    }
}

/// The DGEMM configurations a sweep sanitizes: every valid `BS` for each
/// `N`, crossed with group/run shapes that exercise both retire paths
/// (the separator-barrier path via `R=2` and the multi-product group path
/// via `G=2`). `all` widens the sweep to `N=128` and the maximal group.
pub fn dgemm_grid(arch: &GpuArch, all: bool) -> Vec<TiledDgemmConfig> {
    let ns: &[usize] = if all { &[32, 64, 128] } else { &[32, 64] };
    let mut out = Vec::new();
    for &n in ns {
        for bs in 1..=32usize {
            if !n.is_multiple_of(bs) {
                continue;
            }
            let mg = max_group(bs);
            let mut shapes = vec![(1usize, 1usize), (1, 2)];
            if mg >= 2 {
                shapes.push((2, 1));
            }
            if all && mg > 2 {
                shapes.push((mg, 1));
            }
            for (g, r) in shapes {
                let cfg = TiledDgemmConfig { n, bs, g, r };
                if cfg.is_valid(arch) {
                    out.push(cfg);
                }
            }
        }
    }
    out
}

/// The `(n, rows)` FFT configurations a sweep sanitizes.
pub fn fft_grid(all: bool) -> Vec<(usize, usize)> {
    let mut out = vec![(8, 3), (32, 3), (64, 2)];
    if all {
        out.push((128, 2));
        out.push((256, 1));
    }
    out
}

/// Sanitizes every shipped kernel configuration on `arch`.
pub fn sanitize_all(arch: &GpuArch, all: bool) -> SanitizeReport {
    sanitize_all_sampled(arch, all, SampleSpec::full())
}

/// [`sanitize_all`] under a [`SampleSpec`]: the production-scale sweep
/// mode (`repro sanitize --sample K`).
pub fn sanitize_all_sampled(arch: &GpuArch, all: bool, sample: SampleSpec) -> SanitizeReport {
    let mut kernels = Vec::new();
    for cfg in dgemm_grid(arch, all) {
        kernels.push(sanitize_dgemm_sampled(cfg, arch, sample));
    }
    for (n, rows) in fft_grid(all) {
        kernels.push(sanitize_fft_sampled(n, rows, arch, sample));
    }
    SanitizeReport { arch: arch.name.clone(), kernels }
}
