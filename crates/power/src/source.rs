//! Power sources: time-varying power draws that a meter can observe.

use enprop_units::{Seconds, Watts};

/// Something that draws power over a finite duration.
///
/// `power_at(t)` must be defined on `0 ≤ t ≤ duration()`; the draw outside
/// that window is zero by convention (the node's idle floor is modeled
/// separately by the measurement session).
pub trait PowerSource {
    /// Instantaneous power draw at time `t` from the start of the run.
    fn power_at(&self, t: Seconds) -> Watts;
    /// Length of the run.
    fn duration(&self) -> Seconds;

    /// Exact energy over the run by analytic/fine integration.
    ///
    /// Default implementation integrates `power_at` with a fine trapezoid
    /// (1 ms steps, at least 1000 of them); implementors with closed forms
    /// should override.
    fn energy(&self) -> enprop_units::Joules {
        let d = self.duration();
        let steps = ((d.value() / 1.0e-3).ceil() as usize).clamp(1000, 10_000_000);
        let h = d.value() / steps as f64;
        let mut acc = 0.5 * (self.power_at(Seconds(0.0)).value() + self.power_at(d).value());
        for i in 1..steps {
            acc += self.power_at(Seconds(i as f64 * h)).value();
        }
        enprop_units::Joules(acc * h)
    }
}

/// A constant draw for a fixed duration — the shape of a steady kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantLoad {
    /// The constant power level.
    pub power: Watts,
    /// The run length.
    pub duration: Seconds,
}

impl ConstantLoad {
    /// Creates a constant load. Panics on negative power/duration.
    pub fn new(power: Watts, duration: Seconds) -> Self {
        assert!(power.value() >= 0.0, "power must be non-negative");
        assert!(duration.value() > 0.0, "duration must be positive");
        Self { power, duration }
    }
}

impl PowerSource for ConstantLoad {
    fn power_at(&self, t: Seconds) -> Watts {
        if t.value() < 0.0 || t > self.duration {
            Watts::ZERO
        } else {
            self.power
        }
    }

    fn duration(&self) -> Seconds {
        self.duration
    }

    fn energy(&self) -> enprop_units::Joules {
        self.power * self.duration
    }
}

/// A sequence of constant segments — e.g. a warm-up phase at elevated power
/// followed by steady state, or the per-kernel phases of a compound
/// application.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PiecewiseLoad {
    /// `(segment length, power)` pairs in execution order.
    segments: Vec<(Seconds, Watts)>,
}

impl PiecewiseLoad {
    /// Creates an empty piecewise load; add segments with `push`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a constant segment.
    pub fn push(&mut self, len: Seconds, power: Watts) -> &mut Self {
        assert!(len.value() > 0.0, "segment length must be positive");
        assert!(power.value() >= 0.0, "power must be non-negative");
        self.segments.push((len, power));
        self
    }

    /// Builds from segments directly.
    pub fn from_segments(segments: Vec<(Seconds, Watts)>) -> Self {
        let mut p = Self::new();
        for (len, w) in segments {
            p.push(len, w);
        }
        p
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// True when no segments have been added.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }
}

impl PowerSource for PiecewiseLoad {
    fn power_at(&self, t: Seconds) -> Watts {
        if t.value() < 0.0 {
            return Watts::ZERO;
        }
        let mut elapsed = 0.0;
        for &(len, w) in &self.segments {
            elapsed += len.value();
            if t.value() <= elapsed {
                return w;
            }
        }
        Watts::ZERO
    }

    fn duration(&self) -> Seconds {
        Seconds(self.segments.iter().map(|(l, _)| l.value()).sum())
    }

    fn energy(&self) -> enprop_units::Joules {
        self.segments.iter().map(|&(l, w)| w * l).sum()
    }
}

/// Two sources drawing power simultaneously (e.g. compute plus the paper's
/// 58 W "energy-expensive component"). The composite lasts as long as the
/// longer of the two.
#[derive(Debug, Clone)]
pub struct CompositeLoad<A, B> {
    /// First component.
    pub a: A,
    /// Second component.
    pub b: B,
}

impl<A: PowerSource, B: PowerSource> CompositeLoad<A, B> {
    /// Combines two sources.
    pub fn new(a: A, b: B) -> Self {
        Self { a, b }
    }
}

impl<A: PowerSource, B: PowerSource> PowerSource for CompositeLoad<A, B> {
    fn power_at(&self, t: Seconds) -> Watts {
        self.a.power_at(t) + self.b.power_at(t)
    }

    fn duration(&self) -> Seconds {
        self.a.duration().max(self.b.duration())
    }

    fn energy(&self) -> enprop_units::Joules {
        self.a.energy() + self.b.energy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enprop_units::Joules;

    #[test]
    fn constant_load_energy() {
        let l = ConstantLoad::new(Watts(100.0), Seconds(2.5));
        assert_eq!(l.energy(), Joules(250.0));
        assert_eq!(l.power_at(Seconds(1.0)), Watts(100.0));
        assert_eq!(l.power_at(Seconds(3.0)), Watts::ZERO);
    }

    #[test]
    fn piecewise_lookup_and_energy() {
        let mut p = PiecewiseLoad::new();
        p.push(Seconds(1.0), Watts(50.0)).push(Seconds(2.0), Watts(100.0));
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.duration(), Seconds(3.0));
        assert_eq!(p.energy(), Joules(250.0));
        assert_eq!(p.power_at(Seconds(0.5)), Watts(50.0));
        assert_eq!(p.power_at(Seconds(1.5)), Watts(100.0));
        assert_eq!(p.power_at(Seconds(5.0)), Watts::ZERO);
    }

    #[test]
    fn composite_adds_power_and_energy() {
        let a = ConstantLoad::new(Watts(100.0), Seconds(2.0));
        let b = ConstantLoad::new(Watts(58.0), Seconds(1.0));
        let c = CompositeLoad::new(a, b);
        assert_eq!(c.duration(), Seconds(2.0));
        assert_eq!(c.power_at(Seconds(0.5)), Watts(158.0));
        assert_eq!(c.power_at(Seconds(1.5)), Watts(100.0));
        assert_eq!(c.energy(), Joules(258.0));
    }

    #[test]
    fn default_energy_integration_close_to_exact() {
        // Piecewise already overrides; check the default path via a custom
        // ramp source instead.
        struct Ramp;
        impl PowerSource for Ramp {
            fn power_at(&self, t: Seconds) -> Watts {
                Watts(10.0 * t.value())
            }
            fn duration(&self) -> Seconds {
                Seconds(2.0)
            }
        }
        // ∫₀² 10 t dt = 20.
        let e = Ramp.energy();
        assert!((e.value() - 20.0).abs() < 1e-6, "{e}");
    }
}
