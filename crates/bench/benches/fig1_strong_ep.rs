//! Bench + regeneration of Fig. 1 (strong EP: E_d vs W for the 2-D FFT on
//! the Haswell CPU, K40c and P100).

use criterion::{criterion_group, criterion_main, Criterion};
use enprop_bench::figures::fig1;

fn bench(c: &mut Criterion) {
    println!("{}", fig1::render());
    c.bench_function("fig1/generate", |b| b.iter(fig1::generate));
}

criterion_group!(benches, bench);
criterion_main!(benches);
