//! Affine access summaries: fitting closed forms to probe streams and
//! verifying them on every recorded access.
//!
//! Per `(phase, space, buffer, kind)` a thread's accesses are split into
//! *families* — interleaved arithmetic subsequences — and each family is
//! summarized as
//!
//! ```text
//! addr = c0 + dk·k + c1·tx + c2·ty + c3·bx + c4·by   (k ∈ [0, K))
//! ```
//!
//! The coefficients are *fitted* from structured probe points (origin
//! thread/block plus one step along each axis) and then *verified*
//! against every other recorded access: any mismatch is a typed
//! [`NonAffine`](crate::report::FallbackKind::NonAffine) fallback, never
//! a silent approximation. Parametric analyses (see [`crate::dgemm`])
//! extend the form with per-occurrence terms `e1·τ + e2·m`.

use crate::probe::BlockProbe;
use crate::report::{Fallback, FallbackKind};
use enprop_gpusim::emulator::BufId;
use enprop_sanitize::report::{AccessKind, MemSpace};
use std::collections::BTreeMap;

/// Coefficients of one affine family. `e1`/`e2` (per-tile-step and
/// per-product drift) are zero for concrete summaries and fitted by the
/// parametric analyzer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Coeffs {
    /// Constant term (address of thread (0,0) of block (0,0), k = 0).
    pub c0: i128,
    /// Inner-repeat stride (`k` ∈ [0, K)).
    pub dk: i128,
    /// Thread-x stride.
    pub c1: i128,
    /// Thread-y stride.
    pub c2: i128,
    /// Block-x stride.
    pub c3: i128,
    /// Block-y stride.
    pub c4: i128,
    /// Per-tile-step (τ) drift — parametric summaries only.
    pub e1: i128,
    /// Per-product (m) drift — parametric summaries only.
    pub e2: i128,
}

impl Coeffs {
    /// The address at concrete coordinates.
    #[allow(clippy::too_many_arguments)]
    pub fn at(&self, k: i128, tx: i128, ty: i128, bx: i128, by: i128, tau: i128, m: i128) -> i128 {
        self.c0
            + self.dk * k
            + self.c1 * tx
            + self.c2 * ty
            + self.c3 * bx
            + self.c4 * by
            + self.e1 * tau
            + self.e2 * m
    }
}

/// One verified affine family of a phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Family {
    /// Memory space.
    pub space: MemSpace,
    /// Global allocation (registry index), `None` for shared memory.
    pub buf: Option<usize>,
    /// Load or store.
    pub kind: AccessKind,
    /// Inner repeat count per thread per occurrence.
    pub k: usize,
    /// The fitted (and verified) coefficients.
    pub co: Coeffs,
}

/// All families of one barrier phase.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PhaseSummary {
    /// Families in deterministic (space, buffer, kind, position) order.
    pub families: Vec<Family>,
}

/// The verified summary of a whole concrete launch.
#[derive(Debug, Clone)]
pub struct LaunchShape {
    /// One summary per barrier phase, in execution order.
    pub phases: Vec<PhaseSummary>,
    /// Block dimensions `(width, height)`.
    pub block: (usize, usize),
    /// Grid dimensions `(width, height)`.
    pub grid: (usize, usize),
}

/// Largest interleave factor the family splitter tries before declaring
/// a stream non-affine (beyond it, each position becomes its own family
/// when the stream is short enough).
const MAX_INTERLEAVE: usize = 4;
/// Streams up to this length may fall back to one-family-per-position.
const MAX_SINGLETON_SPLIT: usize = 8;

/// Key identifying one access stream within a phase. Global buffers are
/// keyed by registry index so the order is deterministic across runs and
/// configs (BufIds are allocation-derived).
type StreamKey = (usize, u8, usize); // (space: 0 shared / 1 global, kind, registry index)

fn stream_key(space: MemSpace, kind: AccessKind, buf: Option<usize>) -> StreamKey {
    let s = match space {
        MemSpace::Shared => 0,
        MemSpace::Global => 1,
    };
    let k = match kind {
        AccessKind::Read => 0,
        AccessKind::Write => 1,
    };
    (s, k, buf.unwrap_or(0))
}

fn non_affine(
    phase: usize,
    space: MemSpace,
    buffer: Option<&str>,
    detail: String,
) -> Fallback {
    Fallback::new(FallbackKind::NonAffine, Some(phase), Some(space), buffer, detail)
}

/// Splits one thread-indexed stream table into interleaved arithmetic
/// families: family `f` of interleave `m` holds positions `f, f+m, …`,
/// and must be arithmetic with a stride shared by *all* threads.
/// Returns `(interleave, per-family (stride, K))`.
fn split_families(
    seqs: &[Vec<i128>],
    len: usize,
) -> Option<(usize, Vec<(i128, usize)>)> {
    'outer: for m in 1..=MAX_INTERLEAVE.min(len) {
        if !len.is_multiple_of(m) {
            continue;
        }
        let k = len / m;
        let mut fams = Vec::with_capacity(m);
        for f in 0..m {
            let mut stride: Option<i128> = None;
            for seq in seqs {
                for j in 1..k {
                    let d = seq[f + j * m] - seq[f + (j - 1) * m];
                    match stride {
                        None => stride = Some(d),
                        Some(s) if s == d => {}
                        Some(_) => continue 'outer,
                    }
                }
            }
            fams.push((stride.unwrap_or(0), k));
        }
        return Some((m, fams));
    }
    if len <= MAX_SINGLETON_SPLIT {
        // One family per position (K = 1 each) — always consistent.
        return Some((len, vec![(0, 1); len]));
    }
    None
}

/// Fits `base(tx, ty) = c0 + c1·tx + c2·ty` from the origin-adjacent
/// threads and verifies it on all of them. `bases` is indexed
/// `ty * bw + tx`.
fn fit_thread_affine(bases: &[i128], bw: usize, bh: usize) -> Option<(i128, i128, i128)> {
    let c0 = bases[0];
    let c1 = if bw > 1 { bases[1] - c0 } else { 0 };
    let c2 = if bh > 1 { bases[bw] - c0 } else { 0 };
    for ty in 0..bh {
        for tx in 0..bw {
            if bases[ty * bw + tx] != c0 + c1 * tx as i128 + c2 * ty as i128 {
                return None;
            }
        }
    }
    Some((c0, c1, c2))
}

/// Summarizes one block's recorded accesses into per-phase families with
/// block-local bases (`c3 = c4 = 0`; the caller fits those across
/// blocks). `buf_names` maps registry indices to display names for
/// diagnostics; `resolve` maps a BufId to its registry index.
fn summarize_block(
    probe: &BlockProbe,
    bw: usize,
    bh: usize,
    buf_names: &[String],
    resolve: &dyn Fn(BufId) -> Option<usize>,
) -> Result<Vec<PhaseSummary>, Fallback> {
    let threads = bw * bh;
    // streams[phase][key] = per-thread sequences.
    let mut streams: Vec<BTreeMap<StreamKey, Vec<Vec<i128>>>> = Vec::new();
    let mut spaces: BTreeMap<StreamKey, (MemSpace, AccessKind, Option<usize>)> = BTreeMap::new();
    for a in &probe.accesses {
        let buf = match a.buf {
            None => None,
            Some(id) => Some(resolve(id).ok_or_else(|| {
                Fallback::launch(
                    FallbackKind::Unsupported,
                    format!("phase {}: access to an unregistered global buffer", a.phase),
                )
            })?),
        };
        let key = stream_key(a.space, a.kind, buf);
        spaces.entry(key).or_insert((a.space, a.kind, buf));
        if a.phase >= streams.len() {
            streams.resize_with(a.phase + 1, BTreeMap::new);
        }
        let per_thread = streams[a.phase]
            .entry(key)
            .or_insert_with(|| vec![Vec::new(); threads]);
        per_thread[a.ty * bw + a.tx].push(a.idx as i128);
    }

    let mut phases = Vec::with_capacity(streams.len());
    for (phase, keys) in streams.iter().enumerate() {
        let mut families = Vec::new();
        for (key, seqs) in keys {
            let (space, kind, buf) = spaces[key];
            let name = buf.map(|b| buf_names[b].as_str());
            let len = seqs[0].len();
            if seqs.iter().any(|s| s.len() != len) || len == 0 {
                return Err(non_affine(
                    phase,
                    space,
                    name,
                    format!(
                        "phase {phase}: {} {} count varies across threads",
                        space.as_str(),
                        kind.as_str()
                    ),
                ));
            }
            let (m, fams) = split_families(seqs, len).ok_or_else(|| {
                non_affine(
                    phase,
                    space,
                    name,
                    format!(
                        "phase {phase}: {} {} stream is not an interleave of arithmetic \
                         sequences",
                        space.as_str(),
                        kind.as_str()
                    ),
                )
            })?;
            for (f, &(dk, k)) in fams.iter().enumerate() {
                let bases: Vec<i128> = seqs.iter().map(|s| s[f]).collect();
                let (c0, c1, c2) = fit_thread_affine(&bases, bw, bh).ok_or_else(|| {
                    non_affine(
                        phase,
                        space,
                        name,
                        format!(
                            "phase {phase}: {} {} base address is not affine in (tx, ty) \
                             (family {f} of {m})",
                            space.as_str(),
                            kind.as_str()
                        ),
                    )
                })?;
                families.push(Family {
                    space,
                    buf,
                    kind,
                    k,
                    co: Coeffs { c0, dk, c1, c2, ..Coeffs::default() },
                });
            }
        }
        phases.push(PhaseSummary { families });
    }
    Ok(phases)
}

/// Summarizes a whole probed launch: per-block summaries, then a
/// cross-block fit of the `c3`/`c4` strides, verified on every block.
///
/// `registry` lists the launch's global buffers as `(id, name, len)`;
/// every recorded global access must resolve to one of them.
pub fn summarize_launch(
    blocks: &[BlockProbe],
    block_dim: (usize, usize),
    grid_dim: (usize, usize),
    registry: &[(BufId, String, usize)],
) -> Result<LaunchShape, Fallback> {
    let (bw, bh) = block_dim;
    let (gx, gy) = grid_dim;
    assert_eq!(blocks.len(), gx * gy, "probe must cover the whole grid");
    let buf_names: Vec<String> = registry.iter().map(|(_, n, _)| n.clone()).collect();
    let resolve = |id: BufId| registry.iter().position(|(rid, _, _)| *rid == id);

    let mut per_block: Vec<Vec<PhaseSummary>> = Vec::with_capacity(blocks.len());
    for probe in blocks {
        per_block.push(summarize_block(probe, bw, bh, &buf_names, &resolve)?);
    }

    // All blocks must agree structurally (phase count, family layout,
    // thread strides); only the bases may differ, affinely in (bx, by).
    let origin = blocks.iter().position(|b| b.bx == 0 && b.by == 0).expect("origin block");
    let base_phases = per_block[origin].clone();
    let mismatch = |detail: String| Fallback::launch(FallbackKind::NonAffine, detail);
    for (b, summary) in blocks.iter().zip(&per_block) {
        if summary.len() != base_phases.len() {
            return Err(mismatch(format!(
                "block ({}, {}) ran {} access-bearing phases where block (0, 0) ran {}",
                b.bx,
                b.by,
                summary.len(),
                base_phases.len()
            )));
        }
    }

    let find = |bx: usize, by: usize| {
        blocks.iter().position(|b| b.bx == bx && b.by == by).expect("grid block")
    };
    let stepx = (gx > 1).then(|| find(1, 0));
    let stepy = (gy > 1).then(|| find(0, 1));

    let mut phases = Vec::with_capacity(base_phases.len());
    for (p, base) in base_phases.iter().enumerate() {
        let mut families = Vec::with_capacity(base.families.len());
        for (fi, fam) in base.families.iter().enumerate() {
            let buf_name = fam.buf.map(|b| buf_names[b].as_str());
            let base_at = |bi: usize| -> Result<i128, Fallback> {
                let other = &per_block[bi][p];
                let of = other.families.get(fi).ok_or_else(|| {
                    mismatch(format!("phase {p}: family layout varies across blocks"))
                })?;
                if (of.space, of.buf, of.kind, of.k, of.co.dk, of.co.c1, of.co.c2)
                    != (fam.space, fam.buf, fam.kind, fam.k, fam.co.dk, fam.co.c1, fam.co.c2)
                {
                    return Err(non_affine(
                        p,
                        fam.space,
                        buf_name,
                        format!("phase {p}: family shape varies across blocks"),
                    ));
                }
                Ok(of.co.c0)
            };
            let c0 = fam.co.c0;
            let c3 = match stepx {
                Some(bi) => base_at(bi)? - c0,
                None => 0,
            };
            let c4 = match stepy {
                Some(bi) => base_at(bi)? - c0,
                None => 0,
            };
            // Verify the block fit on every block.
            for (b, _) in blocks.iter().enumerate() {
                let expect = c0 + c3 * blocks[b].bx as i128 + c4 * blocks[b].by as i128;
                if base_at(b)? != expect {
                    return Err(non_affine(
                        p,
                        fam.space,
                        buf_name,
                        format!(
                            "phase {p}: base address is not affine in (bx, by) at block \
                             ({}, {})",
                            blocks[b].bx, blocks[b].by
                        ),
                    ));
                }
            }
            families.push(Family {
                co: Coeffs { c3, c4, ..fam.co },
                ..fam.clone()
            });
        }
        phases.push(PhaseSummary { families });
    }
    Ok(LaunchShape { phases, block: block_dim, grid: grid_dim })
}
