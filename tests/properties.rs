//! Property-based tests of the toolkit's core invariants.

use enprop::ep::{DiscreteProfile, Partitioner, SimpleEpCore, TwoCoreAnalysis};
use enprop::kernels::{dgemm_blocked, dgemm_naive, fft_inplace, ifft_inplace, Complex, Matrix};
use enprop::pareto::{
    front_layers, is_non_dominated, pareto_front, BiPoint, FrontTracker, TradeoffAnalysis,
};
use enprop::units::{Joules, Seconds};
use enprop::stats::describe::Summary;
use enprop::stats::dist::{Normal, StudentT};
use enprop::units::Utilization;
use proptest::prelude::*;

fn cloud_strategy() -> impl Strategy<Value = Vec<BiPoint>> {
    prop::collection::vec((0.1f64..100.0, 0.1f64..1000.0), 1..60)
        .prop_map(|v| v.into_iter().map(|(t, e)| BiPoint::new(t, e)).collect())
}

proptest! {
    /// Every front member is non-dominated; every non-member with a
    /// distinct objective vector is dominated.
    #[test]
    fn pareto_front_is_exactly_the_non_dominated_set(cloud in cloud_strategy()) {
        let front = pareto_front(&cloud);
        prop_assert!(!front.is_empty());
        for &i in &front {
            prop_assert!(is_non_dominated(&cloud, i));
        }
        for i in 0..cloud.len() {
            if !front.contains(&i) {
                let duplicate = front.iter().any(|&j| cloud[j] == cloud[i]);
                prop_assert!(duplicate || !is_non_dominated(&cloud, i), "point {i}");
            }
        }
    }

    /// Front layers partition the cloud and layer 0 is the front.
    #[test]
    fn layers_partition(cloud in cloud_strategy()) {
        let layers = front_layers(&cloud);
        let total: usize = layers.iter().map(|l| l.len()).sum();
        prop_assert_eq!(total, cloud.len());
        let mut seen: Vec<usize> = layers.iter().flatten().copied().collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..cloud.len()).collect::<Vec<_>>());
    }

    /// Trade-offs along a front are monotone: more degradation never means
    /// less savings.
    #[test]
    fn tradeoffs_monotone(cloud in cloud_strategy()) {
        let analysis = TradeoffAnalysis::of(&cloud);
        for w in analysis.front.windows(2) {
            prop_assert!(w[1].degradation >= w[0].degradation);
            prop_assert!(w[1].savings >= w[0].savings);
        }
        prop_assert_eq!(analysis.performance_optimal().degradation, 0.0);
    }

    /// §III theorem as a property: E₃ > E₂ > E₁ for all admissible
    /// (a, b, U, ΔU).
    #[test]
    fn two_core_theorem(
        a in 0.1f64..100.0,
        b in 0.1f64..100.0,
        u in 0.05f64..0.95,
        frac in 0.01f64..0.99,
    ) {
        let delta = frac * (u.min(1.0 - u) - 1e-6);
        prop_assume!(delta > 1e-6);
        let an = TwoCoreAnalysis::new(SimpleEpCore::new(a, b));
        let (e1, e2, e3) = an.theorem_triple(Utilization::new(u), delta);
        prop_assert!(e2 > e1);
        prop_assert!(e3 > e2);
    }

    /// FFT round-trip is the identity (up to fp error), for any signal.
    #[test]
    fn fft_roundtrip(
        signal in prop::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 1..6usize)
            .prop_map(|seed| {
                // Expand a small seed to a power-of-two length.
                let len = 1usize << (seed.len() + 2);
                (0..len)
                    .map(|i| {
                        let (re, im) = seed[i % seed.len()];
                        Complex::new(re + i as f64 * 0.01, im - i as f64 * 0.02)
                    })
                    .collect::<Vec<_>>()
            })
    ) {
        let mut x = signal.clone();
        fft_inplace(&mut x);
        ifft_inplace(&mut x);
        for (a, b) in x.iter().zip(&signal) {
            prop_assert!((a.re - b.re).abs() < 1e-9);
            prop_assert!((a.im - b.im).abs() < 1e-9);
        }
    }

    /// Blocked DGEMM equals naive DGEMM for arbitrary shapes, block sizes
    /// and coefficients.
    #[test]
    fn blocked_dgemm_correct(
        m in 1usize..12,
        k in 1usize..12,
        n in 1usize..12,
        bs in 1usize..16,
        alpha in -2.0f64..2.0,
        beta in -2.0f64..2.0,
        seed in 0u64..1000,
    ) {
        let a = Matrix::filled(m, k, seed);
        let b = Matrix::filled(k, n, seed + 1);
        let mut c1 = Matrix::filled(m, n, seed + 2);
        let mut c2 = c1.clone();
        dgemm_naive(alpha, &a, &b, beta, &mut c1);
        dgemm_blocked(alpha, a.as_slice(), b.as_slice(), beta, c2.as_mut_slice(), m, k, n, bs);
        prop_assert!(c1.max_abs_diff(&c2) < 1e-9);
    }

    /// Student-t CDF is a proper CDF: monotone, symmetric, in [0, 1].
    #[test]
    fn student_t_cdf_properties(df in 1.0f64..100.0, x in -50.0f64..50.0) {
        let t = StudentT::new(df);
        let c = t.cdf(x);
        prop_assert!((0.0..=1.0).contains(&c));
        prop_assert!((t.cdf(x) + t.cdf(-x) - 1.0).abs() < 1e-10);
        prop_assert!(t.cdf(x + 0.1) >= c);
    }

    /// Normal quantile inverts the CDF everywhere.
    #[test]
    fn normal_quantile_inverts(mean in -100.0f64..100.0, sd in 0.01f64..50.0, p in 0.001f64..0.999) {
        let n = Normal::new(mean, sd);
        prop_assert!((n.cdf(n.inv_cdf(p)) - p).abs() < 1e-9);
    }

    /// Summary invariants: min ≤ mean ≤ max; sd ≥ 0; constant samples have
    /// zero variance.
    #[test]
    fn summary_invariants(xs in prop::collection::vec(-1e6f64..1e6, 1..50)) {
        let s = Summary::of(&xs);
        prop_assert!(s.min <= s.mean + 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert!(s.variance >= 0.0);
    }

    /// The online front tracker agrees with the batch front on any cloud.
    #[test]
    fn tracker_equals_batch_front(cloud in cloud_strategy()) {
        let mut tracker = FrontTracker::new();
        for (i, &p) in cloud.iter().enumerate() {
            tracker.insert(p, i);
        }
        let batch: Vec<BiPoint> = pareto_front(&cloud).into_iter().map(|i| cloud[i]).collect();
        let online: Vec<BiPoint> = tracker.front().iter().map(|(p, _)| *p).collect();
        prop_assert_eq!(online, batch);
    }

    /// Partitioner invariants on random profiles: distributions assign the
    /// whole workload, the front is mutually non-dominated and sorted.
    #[test]
    fn partitioner_invariants(
        shape in prop::collection::vec((1usize..7, 0.2f64..4.0, 0.2f64..4.0), 1..4),
        total_frac in 0.1f64..1.0,
    ) {
        let profiles: Vec<DiscreteProfile> = shape
            .iter()
            .enumerate()
            .map(|(i, &(q, a, b))| {
                DiscreteProfile::from_fn(format!("p{i}"), q, |k| {
                    let kf = k as f64;
                    (Seconds(a * kf), Joules(b * kf * kf * 0.3 + kf))
                })
            })
            .collect();
        let capacity: usize = profiles.iter().map(|p| p.granularity()).sum();
        let total = ((capacity as f64 * total_frac) as usize).max(1);
        let solver = Partitioner::new(profiles);
        let front = solver.solve(total);
        prop_assert!(!front.is_empty());
        for d in &front {
            prop_assert_eq!(d.chunks.iter().sum::<usize>(), total);
        }
        for (i, a) in front.iter().enumerate() {
            for (j, b) in front.iter().enumerate() {
                if i != j {
                    let dominates = a.time <= b.time
                        && a.energy <= b.energy
                        && (a.time < b.time || a.energy < b.energy);
                    prop_assert!(!dominates, "front member dominated");
                }
            }
        }
        for w in front.windows(2) {
            prop_assert!(w[0].time <= w[1].time);
        }
    }

    /// Utilization mean stays in [min, max] of the inputs.
    #[test]
    fn utilization_mean_bounds(us in prop::collection::vec(0.0f64..1.0, 1..50)) {
        let cores: Vec<Utilization> = us.iter().map(|&u| Utilization::new(u)).collect();
        let mean = Utilization::mean(&cores).fraction();
        let lo = us.iter().cloned().fold(1.0f64, f64::min);
        let hi = us.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(mean >= lo - 1e-12 && mean <= hi + 1e-12);
        prop_assert!(Utilization::std_dev(&cores) >= 0.0);
    }
}
