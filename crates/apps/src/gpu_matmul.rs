//! The GPU matrix-multiplication application of §IV, as a sweep driver.

use crate::checkpoint::{CheckpointError, SweepCheckpoint, SweepManifest};
use crate::parallel::{ResumableSweep, RetryPolicy, RobustSweep, SweepExecutor, SweepFailure};
use crate::point::DataPoint;
use crate::runner::MeasurementRunner;
use enprop_gpusim::{GpuArch, KernelEstimate, ProductProfile, TiledDgemm, TiledDgemmConfig};
use enprop_power::{FaultInjectingMeter, FaultPlan, SimulatedWattsUp};
use enprop_units::Watts;

/// The application bound to one GPU and one workload definition.
#[derive(Debug, Clone)]
pub struct GpuMatMulApp {
    model: TiledDgemm,
    /// Total matrix products `G × R` every configuration must compute.
    pub total_products: usize,
}

impl GpuMatMulApp {
    /// Binds the application to an architecture. Every configuration of a
    /// sweep computes `total_products` products, so all solve the same
    /// workload (the weak-EP precondition).
    pub fn new(arch: GpuArch, total_products: usize) -> Self {
        assert!(total_products >= 1, "need at least one product");
        Self { model: TiledDgemm::new(arch), total_products }
    }

    /// The underlying analytic model.
    pub fn model(&self) -> &TiledDgemm {
        &self.model
    }

    /// All valid configurations for matrix size `n`.
    pub fn configs(&self, n: usize) -> Vec<TiledDgemmConfig> {
        TiledDgemmConfig::enumerate(self.model.arch(), n, self.total_products)
    }

    /// The analytic estimate of every configuration at size `n`, with the
    /// per-`(N, BS)` model sub-result computed once per distinct `BS`
    /// rather than once per `(BS, G, R)` variant. The enumeration is
    /// `BS`-major, so a one-deep profile cache suffices.
    fn estimates(&self, n: usize) -> Vec<(TiledDgemmConfig, KernelEstimate)> {
        let mut profile: Option<ProductProfile> = None;
        self.configs(n)
            .into_iter()
            .map(|cfg| {
                let p = match profile {
                    Some(p) if p.bs == cfg.bs => p,
                    _ => {
                        let p = self.model.product_profile(n, cfg.bs);
                        profile = Some(p);
                        p
                    }
                };
                (cfg, self.model.estimate_from_profile(&p, cfg.g, cfg.r))
            })
            .collect()
    }

    /// Noise-free sweep straight from the analytic model (fast; used by
    /// benches and shape tests).
    pub fn sweep_exact(&self, n: usize) -> Vec<DataPoint<TiledDgemmConfig>> {
        self.estimates(n)
            .into_iter()
            .map(|(cfg, e)| DataPoint {
                config: cfg,
                time: e.time,
                dynamic_energy: e.dynamic_energy(),
                reps: 1,
                converged: true,
            })
            .collect()
    }

    /// Full-methodology sweep: every configuration is metered through the
    /// simulated WattsUp with the repeat-until-confidence protocol, fanned
    /// out over `exec`'s workers. Output is bitwise-identical at any
    /// thread count: configuration `i` is always measured under
    /// [`SweepExecutor::config_seed`]`(i)` on a worker-local rig.
    pub fn sweep_measured(
        &self,
        n: usize,
        exec: &SweepExecutor,
    ) -> Vec<DataPoint<TiledDgemmConfig>> {
        let estimates = self.estimates(n);
        exec.run_measured(
            &estimates,
            || Self::default_runner(0),
            |runner, (cfg, e)| {
                let m = runner.measure(e.time, e.steady_power, e.warmup_power, e.warmup_time);
                DataPoint {
                    config: *cfg,
                    time: m.time,
                    dynamic_energy: m.dynamic_energy,
                    reps: m.reps,
                    converged: m.converged,
                }
            },
        )
    }

    /// Fault-tolerant [`sweep_measured`](Self::sweep_measured): the meter
    /// misbehaves per `plan`, failed measurements are retried per
    /// `policy`, and configurations that exhaust their retries come back
    /// in [`RobustSweep::failures`] instead of panicking the sweep.
    /// Bitwise-identical at any thread count (see
    /// [`SweepExecutor::run_measured_with_retry`]).
    pub fn sweep_measured_robust(
        &self,
        n: usize,
        exec: &SweepExecutor,
        policy: RetryPolicy,
        plan: FaultPlan,
    ) -> RobustSweep<TiledDgemmConfig, DataPoint<TiledDgemmConfig>> {
        let estimates = self.estimates(n);
        let sweep = exec.run_measured_with_retry(
            &estimates,
            policy,
            || Self::faulty_runner(plan, 0),
            |runner, (cfg, e)| {
                let m =
                    runner.try_measure(e.time, e.steady_power, e.warmup_power, e.warmup_time)?;
                Ok(DataPoint {
                    config: *cfg,
                    time: m.time,
                    dynamic_energy: m.dynamic_energy,
                    reps: m.reps,
                    converged: m.converged,
                })
            },
        );
        // Strip the estimates out of the failure records: the configuration
        // is what reports and reruns need.
        RobustSweep {
            points: sweep.points,
            failures: sweep
                .failures
                .into_iter()
                .map(|f| SweepFailure {
                    config: f.config.0,
                    index: f.index,
                    attempts: f.attempts,
                    error: f.error,
                })
                .collect(),
            retried: sweep.retried,
            total: sweep.total,
        }
    }

    /// The manifest a checkpoint journal for this sweep must carry. The
    /// workload string folds in everything that changes outcomes beyond
    /// the seed — architecture, size, product count, and the fault plan —
    /// so resuming under a different environment is refused instead of
    /// silently diverging.
    pub fn checkpoint_manifest(
        &self,
        n: usize,
        exec: &SweepExecutor,
        policy: &RetryPolicy,
        plan: &FaultPlan,
    ) -> SweepManifest {
        SweepManifest::new(
            exec.seed(),
            self.configs(n).len(),
            policy.max_attempts,
            format!(
                "gpu-matmul/{}/N={n}/P={}/faults={plan:?}",
                self.model.arch().name,
                self.total_products
            ),
        )
    }

    /// Crash-safe [`sweep_measured_robust`](Self::sweep_measured_robust):
    /// finished configurations are journaled through `checkpoint`, and
    /// configurations the journal already holds are replayed instead of
    /// re-measured. Open the checkpoint with
    /// [`checkpoint_manifest`](Self::checkpoint_manifest); resumed output
    /// is bitwise-identical to an uninterrupted run at any thread count.
    pub fn sweep_measured_robust_resumable(
        &self,
        n: usize,
        exec: &SweepExecutor,
        policy: RetryPolicy,
        plan: FaultPlan,
        checkpoint: SweepCheckpoint<DataPoint<TiledDgemmConfig>>,
    ) -> Result<
        ResumableSweep<TiledDgemmConfig, DataPoint<TiledDgemmConfig>>,
        CheckpointError,
    > {
        let estimates = self.estimates(n);
        let resumed = exec.run_measured_with_retry_resumable(
            &estimates,
            policy,
            checkpoint,
            || Self::faulty_runner(plan, 0),
            |runner, (cfg, e)| {
                let m =
                    runner.try_measure(e.time, e.steady_power, e.warmup_power, e.warmup_time)?;
                Ok(DataPoint {
                    config: *cfg,
                    time: m.time,
                    dynamic_energy: m.dynamic_energy,
                    reps: m.reps,
                    converged: m.converged,
                })
            },
        )?;
        // Strip the estimates out of the failure records, exactly as the
        // non-resumable path does.
        let sweep = resumed.sweep;
        Ok(ResumableSweep {
            sweep: RobustSweep {
                points: sweep.points,
                failures: sweep
                    .failures
                    .into_iter()
                    .map(|f| SweepFailure {
                        config: f.config.0,
                        index: f.index,
                        attempts: f.attempts,
                        error: f.error,
                    })
                    .collect(),
                retried: sweep.retried,
                total: sweep.total,
            },
            replayed: resumed.replayed,
            executed: resumed.executed,
            torn_tail_bytes: resumed.torn_tail_bytes,
            crashed: resumed.crashed,
        })
    }

    /// The analytic profile of one configuration (for Fig. 6-style
    /// compound/base comparisons).
    pub fn estimate(&self, cfg: &TiledDgemmConfig) -> KernelEstimate {
        self.model.estimate(cfg)
    }

    /// A measurement rig matching the paper's GPU nodes (idle draw of a
    /// GPU server node).
    pub fn default_runner(seed: u64) -> MeasurementRunner {
        MeasurementRunner::new(Watts(110.0), seed)
    }

    /// A [`default_runner`](Self::default_runner)-shaped rig whose meter
    /// misbehaves per `plan`.
    pub fn faulty_runner(
        plan: FaultPlan,
        seed: u64,
    ) -> MeasurementRunner<FaultInjectingMeter<SimulatedWattsUp>> {
        MeasurementRunner::faulty(Watts(110.0), plan, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_solves_same_workload() {
        let app = GpuMatMulApp::new(GpuArch::p100_pcie(), 8);
        let pts = app.sweep_exact(2048);
        assert!(pts.len() > 32, "expected a rich sweep, got {}", pts.len());
        assert!(pts.iter().all(|p| p.config.products() == 8));
    }

    #[test]
    fn measured_sweep_tracks_exact_sweep() {
        let app = GpuMatMulApp::new(GpuArch::k40c(), 4);
        // Small BS subset via small n to keep the test fast.
        let exact = app.sweep_exact(512);
        let measured = app.sweep_measured(512, &SweepExecutor::serial(5));
        assert_eq!(exact.len(), measured.len());
        for (e, m) in exact.iter().zip(&measured) {
            assert_eq!(e.config, m.config);
            let rel = (e.dynamic_energy.value() - m.dynamic_energy.value()).abs()
                / e.dynamic_energy.value();
            assert!(rel < 0.30, "config {:?}: rel err {rel}", e.config);
        }
    }

    #[test]
    fn measured_sweep_is_thread_count_invariant() {
        let app = GpuMatMulApp::new(GpuArch::k40c(), 2);
        let serial = app.sweep_measured(256, &SweepExecutor::serial(9));
        let threaded = app.sweep_measured(256, &SweepExecutor::new(9).with_threads(4));
        assert_eq!(serial, threaded);
    }

    #[test]
    fn faultless_robust_sweep_matches_plain_sweep() {
        let app = GpuMatMulApp::new(GpuArch::k40c(), 2);
        let plain = app.sweep_measured(256, &SweepExecutor::serial(9));
        let robust = app.sweep_measured_robust(
            256,
            &SweepExecutor::serial(9),
            RetryPolicy::default(),
            FaultPlan::none(),
        );
        assert!(robust.is_complete());
        assert_eq!(robust.points, plain);
    }

    #[test]
    fn robust_sweep_reports_failures_with_configs() {
        let app = GpuMatMulApp::new(GpuArch::k40c(), 2);
        let robust = app.sweep_measured_robust(
            256,
            &SweepExecutor::serial(9),
            RetryPolicy::attempts(2),
            FaultPlan::transient(0.5),
        );
        assert_eq!(robust.points.len() + robust.failures.len(), robust.total);
        assert!(robust.failed_configs() > 0, "50% fault rate never exhausted retries");
        let all = app.configs(256);
        for f in &robust.failures {
            assert_eq!(all[f.index], f.config);
        }
    }

    #[test]
    fn resumable_sweep_matches_robust_sweep_bitwise() {
        let app = GpuMatMulApp::new(GpuArch::k40c(), 2);
        let exec = SweepExecutor::serial(9);
        let policy = RetryPolicy::attempts(2);
        let plan = FaultPlan::transient(0.3);
        let clean = app.sweep_measured_robust(256, &exec, policy, plan);
        let dir = std::env::temp_dir()
            .join(format!("enprop-gpumm-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let manifest = app.checkpoint_manifest(256, &exec, &policy, &plan);
        let ckpt = SweepCheckpoint::fresh(&dir, manifest.clone()).unwrap();
        let first =
            app.sweep_measured_robust_resumable(256, &exec, policy, plan, ckpt).unwrap();
        assert_eq!(first.sweep, clean);
        assert_eq!(first.executed, clean.total);
        assert_eq!(first.replayed, 0);
        // A second open replays everything and executes nothing.
        let again = SweepCheckpoint::resume(&dir, &manifest).unwrap();
        let second =
            app.sweep_measured_robust_resumable(256, &exec, policy, plan, again).unwrap();
        assert_eq!(second.sweep, clean);
        assert_eq!(second.executed, 0);
        assert_eq!(second.replayed, clean.total);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fastest_configuration_uses_bs32() {
        let app = GpuMatMulApp::new(GpuArch::p100_pcie(), 8);
        let pts = app.sweep_exact(4096);
        let fastest =
            pts.iter().min_by(|a, b| a.time.value().total_cmp(&b.time.value())).unwrap();
        assert_eq!(fastest.config.bs, 32);
    }
}
