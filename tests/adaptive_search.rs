//! The budgeted front search against the real GPU configuration cloud:
//! how much of the exhaustive Pareto front does the patience-based search
//! recover, and how many metered runs does it save?

use enprop::apps::GpuMatMulApp;
use enprop::gpusim::GpuArch;
use enprop::pareto::{adaptive_front, coverage, pareto_front, BiPoint};

fn cloud(arch: GpuArch, n: usize) -> Vec<BiPoint> {
    GpuMatMulApp::new(arch, 8).sweep_exact(n).iter().map(|p| p.bi_point()).collect()
}

#[test]
fn budgeted_search_recovers_p100_front_cheaply() {
    let cloud = cloud(GpuArch::p100_pcie(), 10240);
    // Sweep order: decreasing BS (the natural "try the biggest tile first"
    // heuristic a practitioner would use) — realized here by reversing the
    // enumeration order, which is BS-ascending.
    let order: Vec<usize> = (0..cloud.len()).rev().collect();
    let r = adaptive_front(order.len(), |i| cloud[order[i]], 12);

    // It stopped well short of the 102-configuration exhaustive sweep…
    assert!(r.stopped_early, "expected early stop, used {}", r.evaluations);
    assert!(
        r.evaluations <= cloud.len() / 2,
        "used {} of {} evaluations",
        r.evaluations,
        cloud.len()
    );

    // …while fully covering the exhaustive front.
    let exhaustive: Vec<BiPoint> =
        pareto_front(&cloud).into_iter().map(|i| cloud[i]).collect();
    let found: Vec<BiPoint> = r.front.iter().map(|(p, _)| *p).collect();
    assert_eq!(coverage(&found, &exhaustive), 1.0, "front not fully recovered");
}

#[test]
fn k40c_singleton_found_after_one_useful_evaluation() {
    let cloud = cloud(GpuArch::k40c(), 10240);
    let order: Vec<usize> = (0..cloud.len()).rev().collect();
    let r = adaptive_front(order.len(), |i| cloud[order[i]], 10);
    // The K40c's global optimum is the very first candidate in
    // BS-descending order (BS = 32); nothing after it improves the front.
    assert!(r.stopped_early);
    assert_eq!(r.front.len(), 1);
    assert!(r.evaluations <= 1 + 10 + 1, "evaluations {}", r.evaluations);
}

#[test]
fn unlucky_order_costs_more_evaluations() {
    // Ascending BS puts the catastrophic BS=1 configurations first: the
    // front keeps improving for longer, so the search must work harder —
    // the ordering heuristic matters, which is the practical point.
    let cloud = cloud(GpuArch::p100_pcie(), 10240);
    let ascending = adaptive_front(cloud.len(), |i| cloud[i], 12);
    let order: Vec<usize> = (0..cloud.len()).rev().collect();
    let descending = adaptive_front(order.len(), |i| cloud[order[i]], 12);
    assert!(
        ascending.evaluations > descending.evaluations,
        "{} vs {}",
        ascending.evaluations,
        descending.evaluations
    );
}
