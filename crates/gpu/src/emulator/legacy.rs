//! The retired OS-thread kernel engine, kept as the equivalence oracle.
//!
//! This is the emulator's original execution strategy: one real OS thread
//! per CUDA thread (up to 32 × 32 = 1024 per block), synchronized by a
//! [`std::sync::Barrier`], with every event bumped on a shared atomic
//! counter. It is semantically faithful but catastrophically slow — thread
//! spawns and barrier convoys dominate — which is why the phase
//! interpreter in [`super::exec`] replaced it as the production engine.
//!
//! It stays in the tree for exactly one purpose: old-vs-new equivalence.
//! Each kernel keeps a `run_legacy` adapter over this engine, and the
//! equivalence suite asserts both engines produce bitwise-identical
//! memory contents and event counts. Nothing else should call it; it is
//! not exported from the crate root.

use super::exec::Dim2;
use super::mem::{EventCounters, GlobalMem, SharedMem};
use std::sync::atomic::Ordering;
use std::sync::Barrier;

/// Per-thread execution context handed to a closure kernel body — the
/// mirror of [`super::exec::PhaseCtx`] for the OS-thread engine, with an
/// explicit [`sync_threads`](ThreadCtx::sync_threads) instead of phase
/// outcomes.
pub struct ThreadCtx<'a> {
    /// This thread's `threadIdx.x`.
    pub tx: usize,
    /// This thread's `threadIdx.y`.
    pub ty: usize,
    /// This block's `blockIdx.x`.
    pub bx: usize,
    /// This block's `blockIdx.y`.
    pub by: usize,
    shared: &'a SharedMem,
    barrier: &'a Barrier,
    events: &'a EventCounters,
}

impl ThreadCtx<'_> {
    /// `__syncthreads()`: every thread of the block must reach the barrier.
    /// Counted once per block (thread (0,0) does the accounting), matching
    /// the per-block CUPTI barrier semantics.
    pub fn sync_threads(&self) {
        if self.tx == 0 && self.ty == 0 {
            self.events.barriers.fetch_add(1, Ordering::Relaxed);
        }
        self.barrier.wait();
    }

    /// Shared-memory load with event accounting.
    #[inline]
    pub fn shared_load(&self, idx: usize) -> f64 {
        self.events.shared_loads.fetch_add(1, Ordering::Relaxed);
        self.shared.load(idx)
    }

    /// Shared-memory store with event accounting.
    #[inline]
    pub fn shared_store(&self, idx: usize, v: f64) {
        self.events.shared_stores.fetch_add(1, Ordering::Relaxed);
        self.shared.store(idx, v);
    }

    /// Global-memory load with event accounting.
    #[inline]
    pub fn global_load(&self, mem: &GlobalMem, idx: usize) -> f64 {
        self.events.global_loads.fetch_add(1, Ordering::Relaxed);
        mem.load(idx)
    }

    /// Global-memory store with event accounting.
    #[inline]
    pub fn global_store(&self, mem: &GlobalMem, idx: usize, v: f64) {
        self.events.global_stores.fetch_add(1, Ordering::Relaxed);
        mem.store(idx, v);
    }

    /// Records `n` double-precision flops.
    #[inline]
    pub fn count_flops(&self, n: u64) {
        self.events.flops.fetch_add(n, Ordering::Relaxed);
    }
}

/// Block-concurrency width of the legacy engine (the old `WAVE_WIDTH`).
/// Kept small and fixed: this engine only runs in equivalence tests and
/// the old-vs-new benchmark, where a stable denominator matters more than
/// throughput.
const LEGACY_WAVE: usize = 4;

/// Launches a closure kernel over `grid` blocks of `block` threads each,
/// with `shared_len` doubles of per-block shared memory, on the OS-thread
/// engine: each block's threads are real OS threads synchronized by a
/// [`Barrier`] (so `__syncthreads` misuse deadlocks), blocks execute in
/// concurrent waves of [`LEGACY_WAVE`].
pub fn launch<K>(grid: Dim2, block: Dim2, shared_len: usize, events: &EventCounters, kernel: K)
where
    K: Fn(&ThreadCtx<'_>) + Sync,
{
    let threads = block.count();
    let block_ids: Vec<(usize, usize)> =
        (0..grid.y).flat_map(|by| (0..grid.x).map(move |bx| (bx, by))).collect();

    for wave in block_ids.chunks(LEGACY_WAVE) {
        crossbeam::thread::scope(|outer| {
            for &(bx, by) in wave {
                let kernel = &kernel;
                outer.spawn(move |_| {
                    let shared = SharedMem::zeroed(shared_len);
                    let barrier = Barrier::new(threads);
                    crossbeam::thread::scope(|inner| {
                        for ty in 0..block.y {
                            for tx in 0..block.x {
                                let shared = &shared;
                                let barrier = &barrier;
                                inner.spawn(move |_| {
                                    let ctx =
                                        ThreadCtx { tx, ty, bx, by, shared, barrier, events };
                                    kernel(&ctx);
                                });
                            }
                        }
                    })
                    .expect("kernel thread panicked");
                });
            }
        })
        .expect("block wave panicked");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_thread_runs_once() {
        let events = EventCounters::new();
        let out = GlobalMem::zeroed(4 * 9); // 2×2 grid of 3×3 blocks
        launch(Dim2::new(2, 2), Dim2::new(3, 3), 0, &events, |ctx| {
            let block_id = ctx.by * 2 + ctx.bx;
            let thread_id = ctx.ty * 3 + ctx.tx;
            ctx.global_store(&out, block_id * 9 + thread_id, 1.0);
        });
        assert_eq!(out.to_vec(), vec![1.0; 36]);
        assert_eq!(events.snapshot().global_stores, 36);
    }

    #[test]
    fn barrier_orders_shared_memory_phases() {
        // Phase 1: each thread writes its id to shared; barrier; phase 2:
        // each thread reads its neighbour's slot. Without a real barrier
        // this reads stale zeros.
        let events = EventCounters::new();
        let out = GlobalMem::zeroed(8);
        launch(Dim2::new(1, 1), Dim2::new(8, 1), 8, &events, |ctx| {
            ctx.shared_store(ctx.tx, ctx.tx as f64 + 1.0);
            ctx.sync_threads();
            let neighbour = (ctx.tx + 1) % 8;
            let v = ctx.shared_load(neighbour);
            ctx.global_store(&out, ctx.tx, v);
        });
        let expect: Vec<f64> = (0..8).map(|i| ((i + 1) % 8) as f64 + 1.0).collect();
        assert_eq!(out.to_vec(), expect);
        // One barrier, counted once per block.
        assert_eq!(events.snapshot().barriers, 1);
    }

    #[test]
    fn barriers_counted_per_block() {
        let events = EventCounters::new();
        launch(Dim2::new(3, 2), Dim2::new(2, 2), 0, &events, |ctx| {
            ctx.sync_threads();
            ctx.sync_threads();
        });
        // 6 blocks × 2 barriers.
        assert_eq!(events.snapshot().barriers, 12);
    }

    #[test]
    fn flop_accounting() {
        let events = EventCounters::new();
        launch(Dim2::new(1, 1), Dim2::new(4, 1), 0, &events, |ctx| {
            ctx.count_flops(10);
        });
        assert_eq!(events.snapshot().flops, 40);
    }

    #[test]
    fn shared_memory_is_per_block() {
        // Each block increments its shared slot once; if shared memory
        // leaked across blocks the final value would accumulate.
        let events = EventCounters::new();
        let out = GlobalMem::zeroed(4);
        launch(Dim2::new(4, 1), Dim2::new(1, 1), 1, &events, |ctx| {
            let v = ctx.shared_load(0) + 1.0;
            ctx.shared_store(0, v);
            ctx.global_store(&out, ctx.bx, v);
        });
        assert_eq!(out.to_vec(), vec![1.0; 4]);
    }
}
